//! Set-associative cache model with true-LRU replacement.
//!
//! The model tracks tags only (the simulator keeps real data in host memory),
//! which is all the timing model needs: it answers "would this line have hit?"
//! and maintains access/miss counters.

use crate::config::CacheGeometry;

/// A set-associative, true-LRU, tag-only cache model.
#[derive(Debug, Clone)]
pub struct Cache {
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    /// `sets * ways` tags; within each set, index 0 is most-recently-used.
    /// Tag value 0 marks an empty way (real tags are full line addresses,
    /// which are never 0 for heap data).
    tags: Box<[u64]>,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache from its geometry. Panics if the geometry is not a
    /// power-of-two number of sets or has zero ways.
    pub fn new(geo: CacheGeometry) -> Self {
        let sets = geo.sets();
        assert!(geo.ways > 0, "cache must have at least one way");
        assert!(sets.is_power_of_two(), "cache sets must be a power of two (got {sets})");
        assert!(geo.line_bytes.is_power_of_two());
        Self {
            ways: geo.ways,
            line_shift: geo.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            tags: vec![0u64; sets * geo.ways].into_boxed_slice(),
            accesses: 0,
            misses: 0,
        }
    }

    /// Line address (byte address >> line_shift) for a byte address.
    #[inline]
    pub fn line_of(&self, byte_addr: usize) -> u64 {
        (byte_addr as u64) >> self.line_shift
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> usize {
        1usize << self.line_shift
    }

    /// Access one line: returns `true` on hit. On miss the line is filled,
    /// evicting the LRU way of its set.
    #[inline]
    pub fn access_line(&mut self, line: u64) -> bool {
        self.accesses += 1;
        let set = (line & self.set_mask) as usize;
        let ways = &mut self.tags[set * self.ways..(set + 1) * self.ways];
        // MRU-ordered linear probe: short (<=16 ways) so a scan beats
        // fancier structures, per the perf-book "keep hot loops branchy-simple".
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            ways[..=pos].rotate_right(1);
            true
        } else {
            self.misses += 1;
            ways.rotate_right(1);
            ways[0] = line;
            false
        }
    }

    /// Probe without filling or counting (used by tests and the prefetcher
    /// to ask "is this resident?").
    pub fn probe(&self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        self.tags[set * self.ways..(set + 1) * self.ways].contains(&line)
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in [0, 1]; 0 when the cache was never accessed.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Forget all contents and counters.
    pub fn reset(&mut self) {
        self.tags.fill(0);
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeometry;

    fn tiny(ways: usize, sets: usize) -> Cache {
        Cache::new(CacheGeometry { size_bytes: sets * ways * 64, ways, line_bytes: 64 })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(2, 4);
        assert!(!c.access_line(0x1000));
        assert!(c.access_line(0x1000));
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, 1); // one set, two ways
        c.access_line(1);
        c.access_line(2);
        c.access_line(1); // 1 becomes MRU
        assert!(!c.access_line(3)); // evicts 2
        assert!(c.probe(1));
        assert!(!c.probe(2));
        assert!(c.probe(3));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny(1, 2); // direct-mapped, two sets
        c.access_line(0); // set 0
        c.access_line(1); // set 1
        assert!(c.probe(0));
        assert!(c.probe(1));
        c.access_line(2); // set 0 again: evicts 0
        assert!(!c.probe(0));
        assert!(c.probe(1));
    }

    #[test]
    fn streaming_larger_than_capacity_always_misses_second_pass() {
        let mut c = tiny(4, 16); // 64 lines capacity
        for l in 0..128u64 {
            c.access_line(l);
        }
        let misses_before = c.misses();
        for l in 0..128u64 {
            c.access_line(l);
        }
        // LRU streaming: everything was evicted before reuse.
        assert_eq!(c.misses() - misses_before, 128);
    }

    #[test]
    fn working_set_within_capacity_all_hits_second_pass() {
        let mut c = tiny(4, 16);
        for l in 0..64u64 {
            c.access_line(l);
        }
        let misses_before = c.misses();
        for l in 0..64u64 {
            c.access_line(l);
        }
        assert_eq!(c.misses(), misses_before);
    }

    #[test]
    fn reset_clears() {
        let mut c = tiny(2, 2);
        c.access_line(7);
        c.reset();
        assert!(!c.probe(7));
        assert_eq!(c.accesses(), 0);
    }
}

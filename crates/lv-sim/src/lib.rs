//! # lv-sim — a long-vector machine timing simulator
//!
//! This crate is the substrate that replaces the paper's gem5 + RVV setup
//! (see `DESIGN.md` §4). It models an in-order 2 GHz core with a
//! vector-length-agnostic (VLA) vector unit — either *tightly integrated*
//! (reads through L1, Paper II / ARM-SVE style) or *decoupled* (attached to
//! L2, Paper I RISC-VV style) — above a set-associative L1/L2 hierarchy and
//! a bandwidth-limited DRAM.
//!
//! Kernels are written exactly like VLA intrinsics code:
//!
//! ```
//! use lv_sim::{Machine, MachineConfig, VReg};
//!
//! // y[i] += a * x[i], vector-length agnostic.
//! let mut m = Machine::new(MachineConfig::rvv_integrated(1024, 1));
//! let x = vec![1.0f32; 100];
//! let mut y = vec![2.0f32; 100];
//! let (vx, vy) = (VReg(0), VReg(1));
//! let mut i = 0;
//! while i < x.len() {
//!     let vl = m.vsetvl(x.len() - i);
//!     m.vle32(vx, &x[i..]);
//!     m.vle32(vy, &y[i..]);
//!     m.vfmacc_vf(vy, 3.0, vx);
//!     m.vse32(vy, &mut y[i..]);
//!     i += vl;
//! }
//! assert!(y.iter().all(|&v| v == 5.0));
//! assert!(m.cycles() > 0);
//! ```
//!
//! Every operation both computes real `f32` results and advances the cycle
//! model, so the same kernel code is unit-testable for correctness and
//! usable for the co-design sweeps.

#![warn(missing_docs)]

mod cache;
mod config;
pub mod fastmodel;
pub mod lint;
mod machine;
mod stats;

pub use cache::Cache;
pub use config::{
    fnv1a, CacheGeometry, ConfigError, CostModel, MachineConfig, MachineConfigBuilder, VpuStyle,
    KIB, MIB,
};
pub use lint::LintState;
pub use machine::{Machine, VReg, NUM_VREGS};
pub use stats::Stats;

/// Revision of the timing model. Bump whenever a change to this crate can
/// alter simulated cycle counts or counters (cost model, cache policy,
/// beat accounting): content-addressed result caches (`lv-bench::plan`)
/// salt their keys with it, so stale cells are invalidated instead of
/// silently reused.
pub const TIMING_REV: u32 = 1;

/// Revision of the analytical fast tier ([`fastmodel`]). Bump whenever a
/// change to the fast model (or to the calibration tables derived from it)
/// can alter fast-tier predictions: fast-tier cell-cache keys are salted
/// with it, separately from [`TIMING_REV`], so the two tiers never
/// cross-contaminate and stale fast cells are invalidated independently.
pub const FAST_MODEL_REV: u32 = 1;

// Re-exported so instrumented downstream crates name one tracing API.
pub use lv_trace::{Tracer, TrackId};

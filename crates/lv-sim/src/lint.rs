//! Opt-in machine invariant checker ("lint").
//!
//! When enabled via [`crate::Machine::enable_lint`], every vector/scalar
//! operation is followed by a consistency sweep over the timing model's
//! own bookkeeping:
//!
//! - **Cycle monotonicity** — the cycle counter never moves backwards.
//! - **`vsetvl` contract** — the granted length is exactly
//!   `min(avl, MVL)`, strictly positive and never above MVL.
//! - **Cache accounting reconciliation** — misses never exceed accesses;
//!   on an integrated VPU every L2 access is caused by exactly one L1
//!   miss (`l2_accesses == l1_misses`), on a decoupled VPU vector traffic
//!   bypasses L1 (`l2_accesses >= l1_misses`); and every L2 miss is a
//!   DRAM line fill counted once, either as demand (`mem_lines`) or as
//!   software prefetch (`prefetch_lines`), so
//!   `l2_misses == mem_lines + prefetch_lines` and
//!   [`crate::Stats::dram_bytes`] equals `l2_misses * line_bytes`.
//! - **Uninitialized-lane reads** — a register read at vector length `vl`
//!   requires that lanes `0..vl` were produced by an earlier write; reads
//!   beyond the widest write observe the register file's zero-fill, which
//!   no kernel may rely on.
//!
//! The lint holds no reference into [`crate::Stats`] and charges no
//! cycles, so a machine with the lint disabled (the default) is
//! bit-identical in timing and results to one that never had it; with
//! the lint *enabled*, cycle counts are still unchanged — violations
//! panic with context instead of being repaired.

use crate::config::VpuStyle;
use crate::machine::NUM_VREGS;
use crate::stats::Stats;

/// State carried by the invariant checker between operations.
#[derive(Debug, Clone)]
pub struct LintState {
    /// Per-register count of lanes ever written (the "valid prefix").
    valid: [usize; NUM_VREGS],
    /// Cycle counter at the previous sweep, for monotonicity.
    last_cycles: u64,
    /// Number of invariant sweeps performed (tests assert the lint ran).
    checks: u64,
}

impl LintState {
    pub(crate) fn new() -> Self {
        Self { valid: [0; NUM_VREGS], last_cycles: 0, checks: 0 }
    }

    /// How many invariant sweeps have run so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Lanes of `r` known to hold kernel-written data.
    pub fn valid_lanes(&self, r: u8) -> usize {
        self.valid[r as usize]
    }

    pub(crate) fn on_write(&mut self, r: u8, vl: usize) {
        let v = &mut self.valid[r as usize];
        *v = (*v).max(vl);
    }

    pub(crate) fn on_read(&mut self, r: u8, vl: usize, op: &'static str) {
        self.checks += 1;
        let valid = self.valid[r as usize];
        assert!(
            vl <= valid,
            "lint: {op} reads v{r} lanes 0..{vl} but only lanes 0..{valid} were ever written \
             (uninitialized lanes observed)",
        );
    }

    pub(crate) fn on_vsetvl(&mut self, avl: usize, granted: usize, mvl: usize) {
        self.checks += 1;
        assert!(granted > 0, "lint: vsetvl({avl}) granted zero elements");
        assert!(granted <= mvl, "lint: vsetvl({avl}) granted {granted} > MVL {mvl}");
        assert_eq!(granted, avl.min(mvl), "lint: vsetvl({avl}) must grant min(avl, MVL)");
    }

    pub(crate) fn on_tick(&mut self, s: &Stats, vpu: VpuStyle) {
        self.checks += 1;
        assert!(
            s.cycles >= self.last_cycles,
            "lint: cycle counter moved backwards ({} -> {})",
            self.last_cycles,
            s.cycles
        );
        self.last_cycles = s.cycles;
        assert!(
            s.l1_misses <= s.l1_accesses,
            "lint: L1 misses ({}) exceed accesses ({})",
            s.l1_misses,
            s.l1_accesses
        );
        assert!(
            s.l2_misses <= s.l2_accesses,
            "lint: L2 misses ({}) exceed accesses ({})",
            s.l2_misses,
            s.l2_accesses
        );
        match vpu {
            VpuStyle::Integrated => assert_eq!(
                s.l2_accesses, s.l1_misses,
                "lint: integrated VPU must feed every L2 access from an L1 miss",
            ),
            VpuStyle::Decoupled => assert!(
                s.l2_accesses >= s.l1_misses,
                "lint: decoupled VPU L2 accesses ({}) below scalar L1 misses ({})",
                s.l2_accesses,
                s.l1_misses
            ),
        }
        assert_eq!(
            s.l2_misses,
            s.mem_lines + s.prefetch_lines,
            "lint: DRAM line accounting out of sync: l2_misses {} != mem_lines {} + \
             prefetch_lines {}",
            s.l2_misses,
            s.mem_lines,
            s.prefetch_lines
        );
    }

    /// [`crate::Machine::reset`] zeroes the cycle counter; re-arm the
    /// monotonicity baseline. Register contents survive a reset, so the
    /// valid prefixes are kept.
    pub(crate) fn on_reset(&mut self) {
        self.last_cycles = 0;
    }
}

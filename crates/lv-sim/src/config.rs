//! Machine configuration: the hardware design points swept by the co-design study.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How the vector processing unit is attached to the memory hierarchy.
///
/// The paper evaluates both styles: Paper II simulates a *tightly integrated*
/// vector unit (reads through the L1 data cache, like ARM-SVE or the RVV unit
/// in the `plct-gem5` fork), while Paper I's RISC-VV model is a *decoupled*
/// VPU attached directly to the L2 cache through a small vector buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VpuStyle {
    /// Vector memory operations probe L1, then L2, then main memory.
    Integrated,
    /// Vector memory operations bypass L1 and probe L2 directly
    /// (Paper I: "the VPU is connected to the L2 cache").
    Decoupled,
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Per-event cycle costs of the in-order timing model.
///
/// Every vector instruction costs `issue` plus a startup term plus a
/// throughput term; memory instructions additionally pay per cache line
/// touched, depending on where in the hierarchy the line hits. The defaults
/// are calibrated so that the *ratios* the paper reports (vector-length
/// scaling, cache-size scaling, algorithm crossovers) are reproduced; see
/// `DESIGN.md` §4 for the substitution rationale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Front-end issue cost per (vector) instruction.
    pub issue: u64,
    /// Extra startup beats for an arithmetic vector instruction
    /// (pipeline fill; amortized by long vectors).
    pub arith_startup: u64,
    /// Extra startup beats for a vector memory instruction
    /// (address generation, TLB, first beat).
    pub mem_startup: u64,
    /// Per-line cost when the line hits in L1 (integrated VPU only).
    pub l1_line: u64,
    /// Per-line cost when the line hits in L2 (pipelined occupancy, not
    /// full latency: consecutive lines of one vector access overlap).
    pub l2_line: u64,
    /// Per-line cost when the line comes from main memory. Bundles the
    /// pipelined DRAM latency with the bandwidth occupancy of a 64 B line
    /// at 12.8 GiB/s / 2 GHz = 6.4 B/cycle (i.e. >= 10 cycles of bus time).
    pub mem_line: u64,
    /// Divisor applied to `l2_line`/`mem_line` for lines brought in by a
    /// software prefetch (latency hidden; only bandwidth occupancy remains).
    pub prefetch_discount: u64,
    /// Additional per-element cycles for indexed/gather/segment accesses,
    /// expressed as elements processed per cycle (RVV gathers are slower
    /// than unit-stride accesses).
    pub gather_elems_per_cycle: u64,
    /// Cost of a scalar ALU operation.
    pub scalar_op: u64,
    /// Cost of the `vsetvl` instruction.
    pub vsetvl: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            issue: 1,
            arith_startup: 2,
            mem_startup: 6,
            l1_line: 1,
            l2_line: 5,
            mem_line: 28,
            prefetch_discount: 3,
            gather_elems_per_cycle: 4,
            scalar_op: 1,
            vsetvl: 1,
        }
    }
}

/// Full machine configuration: one hardware design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Vector register length in bits (512 .. 16384, powers of two).
    pub vlen_bits: usize,
    /// Number of physical vector lanes. Each lane retires two 32-bit
    /// elements per cycle (64-bit datapath), so f32 throughput is
    /// `2 * lanes` elements per cycle.
    pub lanes: usize,
    /// VPU attachment style (integrated vs decoupled).
    pub vpu: VpuStyle,
    /// L1 data cache geometry (64 KiB, 4-way, 64 B lines in the paper).
    pub l1: CacheGeometry,
    /// L2 cache geometry (1 MiB .. 256 MiB swept by the paper).
    pub l2: CacheGeometry,
    /// Whether software prefetch instructions take effect. The RISC-VV
    /// toolchain in the paper ignores them (`false`); A64FX honours them.
    pub sw_prefetch: bool,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Core clock, used only to convert cycles to wall time in reports.
    pub freq_ghz: f64,
}

/// Mebibyte helper for cache sizes.
pub const MIB: usize = 1024 * 1024;
/// Kibibyte helper for cache sizes.
pub const KIB: usize = 1024;

impl MachineConfig {
    /// The paper's Paper-II baseline: tightly integrated RVV unit, 512-bit
    /// vectors, 8 lanes, 64 KiB L1, 1 MiB L2, no software prefetch.
    pub fn rvv_integrated(vlen_bits: usize, l2_mib: usize) -> Self {
        Self {
            vlen_bits,
            lanes: 8,
            vpu: VpuStyle::Integrated,
            l1: CacheGeometry { size_bytes: 64 * KIB, ways: 4, line_bytes: 64 },
            l2: CacheGeometry { size_bytes: l2_mib * MIB, ways: 8, line_bytes: 64 },
            sw_prefetch: false,
            cost: CostModel::default(),
            freq_ghz: 2.0,
        }
    }

    /// Paper-I style decoupled VPU attached to the L2 cache.
    pub fn rvv_decoupled(vlen_bits: usize, l2_mib: usize) -> Self {
        Self { vpu: VpuStyle::Decoupled, ..Self::rvv_integrated(vlen_bits, l2_mib) }
    }

    /// An A64FX-like configuration: integrated 512-bit unit with hardware
    /// prefetch honoured and a larger 8 MiB L2 (per-CMG share).
    pub fn a64fx_like() -> Self {
        Self {
            sw_prefetch: true,
            l2: CacheGeometry { size_bytes: 8 * MIB, ways: 16, line_bytes: 64 },
            ..Self::rvv_integrated(512, 8)
        }
    }

    /// Maximum vector length in 32-bit elements.
    pub fn vlen_elems(&self) -> usize {
        self.vlen_bits / 32
    }

    /// f32 elements retired per cycle by the arithmetic pipes.
    pub fn elems_per_cycle(&self) -> usize {
        (2 * self.lanes).max(1)
    }

    /// Convert a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Peak DRAM bandwidth in bytes/cycle: the 12.8 GiB/s channel the
    /// `mem_line` cost is calibrated against (see [`CostModel::mem_line`]),
    /// divided by the configured clock. Basis for the bandwidth-utilisation
    /// figures in verify/roofline outputs.
    pub fn peak_dram_bytes_per_cycle(&self) -> f64 {
        12.8e9 / (self.freq_ghz * 1e9)
    }

    /// Start a validated [`MachineConfigBuilder`] from the paper's Paper-II
    /// baseline (integrated VPU, 512-bit vectors, 8 lanes, 1 MiB L2).
    pub fn builder() -> MachineConfigBuilder {
        MachineConfigBuilder { cfg: Self::default() }
    }

    /// Check every invariant the timing model (and the opt-in lint) relies
    /// on. [`Machine::try_new`](crate::Machine::try_new) calls this, so an
    /// invalid design point is rejected at construction instead of tripping
    /// an assertion (or the lint) mid-simulation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.vlen_bits < 64 || !self.vlen_bits.is_power_of_two() {
            return Err(ConfigError::BadVlen { vlen_bits: self.vlen_bits });
        }
        if self.lanes == 0 || self.lanes > self.vlen_elems() {
            return Err(ConfigError::BadLanes { lanes: self.lanes, max: self.vlen_elems() });
        }
        for (level, g) in [("L1", &self.l1), ("L2", &self.l2)] {
            if g.size_bytes == 0 || g.ways == 0 || g.line_bytes == 0 {
                return Err(ConfigError::ZeroCache { level });
            }
            if g.sets() == 0 || !g.line_bytes.is_power_of_two() {
                return Err(ConfigError::BadGeometry { level, geometry: *g });
            }
        }
        if !(self.freq_ghz.is_finite() && self.freq_ghz > 0.0) {
            return Err(ConfigError::BadClock { freq_ghz: self.freq_ghz });
        }
        Ok(())
    }

    /// Canonical textual key of this design point: every field that can
    /// change simulated timing, in a fixed order and format. Two configs
    /// are behaviourally identical to the timing model iff their keys are
    /// equal — this (plus [`crate::TIMING_REV`]) is what content-addressed
    /// result caches hash, so it must stay stable across host platforms
    /// and process runs (unlike `std::hash::Hash`).
    pub fn stable_key(&self) -> String {
        let c = &self.cost;
        format!(
            "vlen={};lanes={};vpu={};l1={}/{}/{};l2={}/{}/{};pf={};cost={},{},{},{},{},{},{},{},{},{};ghz={}",
            self.vlen_bits,
            self.lanes,
            match self.vpu {
                VpuStyle::Integrated => "int",
                VpuStyle::Decoupled => "dec",
            },
            self.l1.size_bytes,
            self.l1.ways,
            self.l1.line_bytes,
            self.l2.size_bytes,
            self.l2.ways,
            self.l2.line_bytes,
            u8::from(self.sw_prefetch),
            c.issue,
            c.arith_startup,
            c.mem_startup,
            c.l1_line,
            c.l2_line,
            c.mem_line,
            c.prefetch_discount,
            c.gather_elems_per_cycle,
            c.scalar_op,
            c.vsetvl,
            self.freq_ghz,
        )
    }

    /// 64-bit FNV-1a digest of [`Self::stable_key`]; platform- and
    /// run-stable, unlike `DefaultHasher`.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.stable_key().as_bytes())
    }
}

/// Stable 64-bit FNV-1a hash (the workspace's content-address primitive).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Why a [`MachineConfig`] was rejected by [`MachineConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// Vector length must be a power of two and at least 64 bits (two f32
    /// elements), so `vsetvl` grants are well defined.
    BadVlen {
        /// The offending vector length.
        vlen_bits: usize,
    },
    /// Lane count must be 1..=VLEN/32: more lanes than elements can never
    /// retire and would divide by zero in the beat model.
    BadLanes {
        /// The offending lane count.
        lanes: usize,
        /// Largest valid count (VLEN in 32-bit elements).
        max: usize,
    },
    /// A cache level has zero capacity, ways, or line size.
    ZeroCache {
        /// Which level ("L1" / "L2").
        level: &'static str,
    },
    /// Size/ways/line do not describe a real set-associative array
    /// (zero sets, or a non-power-of-two line that breaks line indexing).
    BadGeometry {
        /// Which level ("L1" / "L2").
        level: &'static str,
        /// The offending geometry.
        geometry: CacheGeometry,
    },
    /// Clock frequency must be finite and positive.
    BadClock {
        /// The offending clock.
        freq_ghz: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadVlen { vlen_bits } => {
                write!(f, "vlen_bits = {vlen_bits}: must be a power of two >= 64")
            }
            ConfigError::BadLanes { lanes, max } => {
                write!(f, "lanes = {lanes}: must be in 1..={max} (VLEN/32)")
            }
            ConfigError::ZeroCache { level } => {
                write!(f, "{level} cache has a zero size, way count, or line size")
            }
            ConfigError::BadGeometry { level, geometry } => write!(
                f,
                "{level} geometry {}B/{}-way/{}B-line does not form a set-associative array",
                geometry.size_bytes, geometry.ways, geometry.line_bytes
            ),
            ConfigError::BadClock { freq_ghz } => {
                write!(f, "freq_ghz = {freq_ghz}: must be finite and positive")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`MachineConfig`] whose `build` validates the design point;
/// see [`MachineConfig::validate`] for the rejected shapes.
///
/// ```
/// use lv_sim::MachineConfig;
/// let cfg = MachineConfig::builder().vlen_bits(4096).l2_mib(64).build().unwrap();
/// assert_eq!(cfg.vlen_elems(), 128);
/// assert!(MachineConfig::builder().vlen_bits(768).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    cfg: MachineConfig,
}

impl MachineConfigBuilder {
    /// Vector register length in bits.
    pub fn vlen_bits(mut self, v: usize) -> Self {
        self.cfg.vlen_bits = v;
        self
    }

    /// Number of physical vector lanes.
    pub fn lanes(mut self, n: usize) -> Self {
        self.cfg.lanes = n;
        self
    }

    /// VPU attachment style.
    pub fn vpu(mut self, style: VpuStyle) -> Self {
        self.cfg.vpu = style;
        self
    }

    /// Decoupled VPU (Paper I style), shorthand for `.vpu(VpuStyle::Decoupled)`.
    pub fn decoupled(self) -> Self {
        self.vpu(VpuStyle::Decoupled)
    }

    /// L2 capacity in MiB, keeping the default ways/line.
    pub fn l2_mib(mut self, mib: usize) -> Self {
        self.cfg.l2.size_bytes = mib * MIB;
        self
    }

    /// Full L1 geometry.
    pub fn l1(mut self, geometry: CacheGeometry) -> Self {
        self.cfg.l1 = geometry;
        self
    }

    /// Full L2 geometry.
    pub fn l2(mut self, geometry: CacheGeometry) -> Self {
        self.cfg.l2 = geometry;
        self
    }

    /// Whether software prefetch instructions take effect.
    pub fn sw_prefetch(mut self, on: bool) -> Self {
        self.cfg.sw_prefetch = on;
        self
    }

    /// Cycle cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cfg.cost = cost;
        self
    }

    /// Core clock in GHz.
    pub fn freq_ghz(mut self, ghz: f64) -> Self {
        self.cfg.freq_ghz = ghz;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<MachineConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::rvv_integrated(512, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vlen_elems_matches_bits() {
        assert_eq!(MachineConfig::rvv_integrated(512, 1).vlen_elems(), 16);
        assert_eq!(MachineConfig::rvv_integrated(16384, 1).vlen_elems(), 512);
    }

    #[test]
    fn geometry_sets() {
        let g = CacheGeometry { size_bytes: 64 * KIB, ways: 4, line_bytes: 64 };
        assert_eq!(g.sets(), 256);
    }

    #[test]
    fn builder_accepts_paper_design_points() {
        let cfg = MachineConfig::builder().vlen_bits(4096).l2_mib(64).build().unwrap();
        assert_eq!(cfg, MachineConfig::rvv_integrated(4096, 64));
        let dec = MachineConfig::builder().vlen_bits(8192).l2_mib(256).decoupled().build().unwrap();
        assert_eq!(dec, MachineConfig::rvv_decoupled(8192, 256));
        let lanes = MachineConfig::builder().vlen_bits(2048).lanes(4).decoupled().build().unwrap();
        let mut expect = MachineConfig::rvv_decoupled(2048, 1);
        expect.lanes = 4;
        assert_eq!(lanes, expect);
    }

    #[test]
    fn builder_rejects_invalid_points() {
        assert_eq!(
            MachineConfig::builder().vlen_bits(768).build(),
            Err(ConfigError::BadVlen { vlen_bits: 768 })
        );
        assert_eq!(
            MachineConfig::builder().vlen_bits(32).build(),
            Err(ConfigError::BadVlen { vlen_bits: 32 })
        );
        // lanes > VLEN/32 can never retire a full beat.
        assert_eq!(
            MachineConfig::builder().vlen_bits(512).lanes(32).build(),
            Err(ConfigError::BadLanes { lanes: 32, max: 16 })
        );
        assert_eq!(
            MachineConfig::builder().lanes(0).build(),
            Err(ConfigError::BadLanes { lanes: 0, max: 16 })
        );
        assert_eq!(
            MachineConfig::builder().l2_mib(0).build(),
            Err(ConfigError::ZeroCache { level: "L2" })
        );
        let bad = CacheGeometry { size_bytes: 100, ways: 3, line_bytes: 48 };
        assert!(matches!(
            MachineConfig::builder().l1(bad).build(),
            Err(ConfigError::BadGeometry { level: "L1", .. })
        ));
        assert!(MachineConfig::builder().freq_ghz(0.0).build().is_err());
        // Errors render a readable reason.
        let msg = ConfigError::BadLanes { lanes: 32, max: 16 }.to_string();
        assert!(msg.contains("32") && msg.contains("16"), "{msg}");
    }

    #[test]
    fn stable_key_separates_timing_relevant_fields() {
        let a = MachineConfig::rvv_integrated(512, 1);
        assert_eq!(a.stable_key(), a.stable_key());
        assert_eq!(a.fingerprint(), MachineConfig::rvv_integrated(512, 1).fingerprint());
        let configs = [
            MachineConfig::rvv_integrated(1024, 1),
            MachineConfig::rvv_integrated(512, 4),
            MachineConfig::rvv_decoupled(512, 1),
            MachineConfig::a64fx_like(),
            MachineConfig::builder().lanes(4).build().unwrap(),
        ];
        for b in configs {
            assert_ne!(a.stable_key(), b.stable_key());
            assert_ne!(a.fingerprint(), b.fingerprint(), "{}", b.stable_key());
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn default_is_paper_baseline() {
        let c = MachineConfig::default();
        assert_eq!(c.vlen_bits, 512);
        assert_eq!(c.l2.size_bytes, MIB);
        assert_eq!(c.vpu, VpuStyle::Integrated);
        assert!(!c.sw_prefetch);
    }
}

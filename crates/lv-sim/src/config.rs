//! Machine configuration: the hardware design points swept by the co-design study.

use serde::{Deserialize, Serialize};

/// How the vector processing unit is attached to the memory hierarchy.
///
/// The paper evaluates both styles: Paper II simulates a *tightly integrated*
/// vector unit (reads through the L1 data cache, like ARM-SVE or the RVV unit
/// in the `plct-gem5` fork), while Paper I's RISC-VV model is a *decoupled*
/// VPU attached directly to the L2 cache through a small vector buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VpuStyle {
    /// Vector memory operations probe L1, then L2, then main memory.
    Integrated,
    /// Vector memory operations bypass L1 and probe L2 directly
    /// (Paper I: "the VPU is connected to the L2 cache").
    Decoupled,
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Per-event cycle costs of the in-order timing model.
///
/// Every vector instruction costs `issue` plus a startup term plus a
/// throughput term; memory instructions additionally pay per cache line
/// touched, depending on where in the hierarchy the line hits. The defaults
/// are calibrated so that the *ratios* the paper reports (vector-length
/// scaling, cache-size scaling, algorithm crossovers) are reproduced; see
/// `DESIGN.md` §4 for the substitution rationale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Front-end issue cost per (vector) instruction.
    pub issue: u64,
    /// Extra startup beats for an arithmetic vector instruction
    /// (pipeline fill; amortized by long vectors).
    pub arith_startup: u64,
    /// Extra startup beats for a vector memory instruction
    /// (address generation, TLB, first beat).
    pub mem_startup: u64,
    /// Per-line cost when the line hits in L1 (integrated VPU only).
    pub l1_line: u64,
    /// Per-line cost when the line hits in L2 (pipelined occupancy, not
    /// full latency: consecutive lines of one vector access overlap).
    pub l2_line: u64,
    /// Per-line cost when the line comes from main memory. Bundles the
    /// pipelined DRAM latency with the bandwidth occupancy of a 64 B line
    /// at 12.8 GiB/s / 2 GHz = 6.4 B/cycle (i.e. >= 10 cycles of bus time).
    pub mem_line: u64,
    /// Divisor applied to `l2_line`/`mem_line` for lines brought in by a
    /// software prefetch (latency hidden; only bandwidth occupancy remains).
    pub prefetch_discount: u64,
    /// Additional per-element cycles for indexed/gather/segment accesses,
    /// expressed as elements processed per cycle (RVV gathers are slower
    /// than unit-stride accesses).
    pub gather_elems_per_cycle: u64,
    /// Cost of a scalar ALU operation.
    pub scalar_op: u64,
    /// Cost of the `vsetvl` instruction.
    pub vsetvl: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            issue: 1,
            arith_startup: 2,
            mem_startup: 6,
            l1_line: 1,
            l2_line: 5,
            mem_line: 28,
            prefetch_discount: 3,
            gather_elems_per_cycle: 4,
            scalar_op: 1,
            vsetvl: 1,
        }
    }
}

/// Full machine configuration: one hardware design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Vector register length in bits (512 .. 16384, powers of two).
    pub vlen_bits: usize,
    /// Number of physical vector lanes. Each lane retires two 32-bit
    /// elements per cycle (64-bit datapath), so f32 throughput is
    /// `2 * lanes` elements per cycle.
    pub lanes: usize,
    /// VPU attachment style (integrated vs decoupled).
    pub vpu: VpuStyle,
    /// L1 data cache geometry (64 KiB, 4-way, 64 B lines in the paper).
    pub l1: CacheGeometry,
    /// L2 cache geometry (1 MiB .. 256 MiB swept by the paper).
    pub l2: CacheGeometry,
    /// Whether software prefetch instructions take effect. The RISC-VV
    /// toolchain in the paper ignores them (`false`); A64FX honours them.
    pub sw_prefetch: bool,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Core clock, used only to convert cycles to wall time in reports.
    pub freq_ghz: f64,
}

/// Mebibyte helper for cache sizes.
pub const MIB: usize = 1024 * 1024;
/// Kibibyte helper for cache sizes.
pub const KIB: usize = 1024;

impl MachineConfig {
    /// The paper's Paper-II baseline: tightly integrated RVV unit, 512-bit
    /// vectors, 8 lanes, 64 KiB L1, 1 MiB L2, no software prefetch.
    pub fn rvv_integrated(vlen_bits: usize, l2_mib: usize) -> Self {
        Self {
            vlen_bits,
            lanes: 8,
            vpu: VpuStyle::Integrated,
            l1: CacheGeometry { size_bytes: 64 * KIB, ways: 4, line_bytes: 64 },
            l2: CacheGeometry { size_bytes: l2_mib * MIB, ways: 8, line_bytes: 64 },
            sw_prefetch: false,
            cost: CostModel::default(),
            freq_ghz: 2.0,
        }
    }

    /// Paper-I style decoupled VPU attached to the L2 cache.
    pub fn rvv_decoupled(vlen_bits: usize, l2_mib: usize) -> Self {
        Self { vpu: VpuStyle::Decoupled, ..Self::rvv_integrated(vlen_bits, l2_mib) }
    }

    /// An A64FX-like configuration: integrated 512-bit unit with hardware
    /// prefetch honoured and a larger 8 MiB L2 (per-CMG share).
    pub fn a64fx_like() -> Self {
        Self {
            sw_prefetch: true,
            l2: CacheGeometry { size_bytes: 8 * MIB, ways: 16, line_bytes: 64 },
            ..Self::rvv_integrated(512, 8)
        }
    }

    /// Maximum vector length in 32-bit elements.
    pub fn vlen_elems(&self) -> usize {
        self.vlen_bits / 32
    }

    /// f32 elements retired per cycle by the arithmetic pipes.
    pub fn elems_per_cycle(&self) -> usize {
        (2 * self.lanes).max(1)
    }

    /// Convert a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Peak DRAM bandwidth in bytes/cycle: the 12.8 GiB/s channel the
    /// `mem_line` cost is calibrated against (see [`CostModel::mem_line`]),
    /// divided by the configured clock. Basis for the bandwidth-utilisation
    /// figures in verify/roofline outputs.
    pub fn peak_dram_bytes_per_cycle(&self) -> f64 {
        12.8e9 / (self.freq_ghz * 1e9)
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::rvv_integrated(512, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vlen_elems_matches_bits() {
        assert_eq!(MachineConfig::rvv_integrated(512, 1).vlen_elems(), 16);
        assert_eq!(MachineConfig::rvv_integrated(16384, 1).vlen_elems(), 512);
    }

    #[test]
    fn geometry_sets() {
        let g = CacheGeometry { size_bytes: 64 * KIB, ways: 4, line_bytes: 64 };
        assert_eq!(g.sets(), 256);
    }

    #[test]
    fn default_is_paper_baseline() {
        let c = MachineConfig::default();
        assert_eq!(c.vlen_bits, 512);
        assert_eq!(c.l2.size_bytes, MIB);
        assert_eq!(c.vpu, VpuStyle::Integrated);
        assert!(!c.sw_prefetch);
    }
}

//! Execution statistics collected by the simulated machine.

use serde::{Deserialize, Serialize};

/// Counters accumulated during a simulation run.
///
/// `cycles` is the in-order timing model's total; the remaining counters
/// support the paper's secondary metrics (average consumed vector length,
/// L2 miss rate, arithmetic intensity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Vector instructions issued (arithmetic + memory + permutes).
    pub vector_instrs: u64,
    /// Sum of the granted vector length over all vector instructions;
    /// `velems / vector_instrs` is the paper's "average consumed VL".
    pub vector_elems: u64,
    /// Floating-point operations performed (FMA counts as 2).
    pub flops: u64,
    /// `vsetvl` executions.
    pub vsetvls: u64,
    /// Scalar ALU operations charged.
    pub scalar_ops: u64,
    /// Cache lines transferred from main memory (demand).
    pub mem_lines: u64,
    /// Cache lines transferred from main memory by software prefetch.
    pub prefetch_lines: u64,
    /// L1 accesses / misses (vector + scalar), integrated VPU only.
    pub l1_accesses: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
}

impl Stats {
    /// Average granted vector length in elements over all vector instructions.
    pub fn avg_vl(&self) -> f64 {
        if self.vector_instrs == 0 {
            0.0
        } else {
            self.vector_elems as f64 / self.vector_instrs as f64
        }
    }

    /// L2 miss rate in [0, 1].
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l2_accesses as f64
        }
    }

    /// L1 miss rate in [0, 1].
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.l1_accesses as f64
        }
    }

    /// FLOPs per cycle achieved by the run.
    pub fn flops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flops as f64 / self.cycles as f64
        }
    }

    /// Difference `self - earlier`, used to attribute counters to a region
    /// (e.g. one network layer) delimited by two snapshots.
    pub fn delta_since(&self, earlier: &Stats) -> Stats {
        Stats {
            cycles: self.cycles - earlier.cycles,
            vector_instrs: self.vector_instrs - earlier.vector_instrs,
            vector_elems: self.vector_elems - earlier.vector_elems,
            flops: self.flops - earlier.flops,
            vsetvls: self.vsetvls - earlier.vsetvls,
            scalar_ops: self.scalar_ops - earlier.scalar_ops,
            mem_lines: self.mem_lines - earlier.mem_lines,
            prefetch_lines: self.prefetch_lines - earlier.prefetch_lines,
            l1_accesses: self.l1_accesses - earlier.l1_accesses,
            l1_misses: self.l1_misses - earlier.l1_misses,
            l2_accesses: self.l2_accesses - earlier.l2_accesses,
            l2_misses: self.l2_misses - earlier.l2_misses,
        }
    }

    /// Field-wise accumulation, the counterpart to [`Stats::delta_since`]:
    /// merging a region delta back into a running total (span aggregation,
    /// multi-kernel roll-ups). `a.delta_since(&b)` merged into `b` is `a`.
    pub fn merge(&mut self, other: &Stats) {
        self.cycles += other.cycles;
        self.vector_instrs += other.vector_instrs;
        self.vector_elems += other.vector_elems;
        self.flops += other.flops;
        self.vsetvls += other.vsetvls;
        self.scalar_ops += other.scalar_ops;
        self.mem_lines += other.mem_lines;
        self.prefetch_lines += other.prefetch_lines;
        self.l1_accesses += other.l1_accesses;
        self.l1_misses += other.l1_misses;
        self.l2_accesses += other.l2_accesses;
        self.l2_misses += other.l2_misses;
    }

    /// Bytes moved from main memory (demand + software-prefetch lines).
    pub fn dram_bytes(&self, line_bytes: usize) -> u64 {
        (self.mem_lines + self.prefetch_lines) * line_bytes as u64
    }

    /// Achieved DRAM bandwidth in bytes/cycle over the counted interval.
    pub fn dram_bytes_per_cycle(&self, line_bytes: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.dram_bytes(line_bytes) as f64 / self.cycles as f64
        }
    }
}

impl std::ops::Add for Stats {
    type Output = Stats;

    fn add(mut self, rhs: Stats) -> Stats {
        self.merge(&rhs);
        self
    }
}

impl std::ops::AddAssign for Stats {
    fn add_assign(&mut self, rhs: Stats) {
        self.merge(&rhs);
    }
}

impl std::iter::Sum for Stats {
    fn sum<I: Iterator<Item = Stats>>(iter: I) -> Stats {
        iter.fold(Stats::default(), |acc, s| acc + s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_vl_empty_is_zero() {
        assert_eq!(Stats::default().avg_vl(), 0.0);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = Stats { cycles: 10, flops: 4, ..Default::default() };
        let b = Stats { cycles: 25, flops: 9, ..Default::default() };
        let d = b.delta_since(&a);
        assert_eq!(d.cycles, 15);
        assert_eq!(d.flops, 5);
    }

    #[test]
    fn merge_is_fieldwise_and_inverts_delta() {
        let base = Stats { cycles: 10, flops: 4, mem_lines: 3, l1_misses: 1, ..Default::default() };
        let later =
            Stats { cycles: 25, flops: 9, mem_lines: 8, l1_misses: 5, ..Default::default() };
        let delta = later.delta_since(&base);
        let mut rebuilt = base;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, later);
    }

    #[test]
    fn add_and_sum_match_merge() {
        let a = Stats { cycles: 1, vector_instrs: 2, vector_elems: 32, ..Default::default() };
        let b = Stats { cycles: 4, vector_instrs: 1, vector_elems: 8, ..Default::default() };
        let via_add = a + b;
        let mut via_assign = a;
        via_assign += b;
        assert_eq!(via_add, via_assign);
        assert_eq!(via_add.cycles, 5);
        assert_eq!(via_add.vector_elems, 40);
        let via_sum: Stats = [a, b].into_iter().sum();
        assert_eq!(via_sum, via_add);
        // Aggregated avg-VL weights by instruction count: (32+8)/(2+1).
        assert!((via_sum.avg_vl() - 40.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dram_bytes_counts_demand_and_prefetch() {
        let s = Stats { cycles: 128, mem_lines: 6, prefetch_lines: 2, ..Default::default() };
        assert_eq!(s.dram_bytes(64), 512);
        assert!((s.dram_bytes_per_cycle(64) - 4.0).abs() < 1e-12);
        assert_eq!(Stats::default().dram_bytes_per_cycle(64), 0.0);
    }

    #[test]
    fn rates() {
        let s = Stats {
            l2_accesses: 10,
            l2_misses: 4,
            vector_instrs: 2,
            vector_elems: 48,
            ..Default::default()
        };
        assert!((s.l2_miss_rate() - 0.4).abs() < 1e-12);
        assert!((s.avg_vl() - 24.0).abs() < 1e-12);
    }
}

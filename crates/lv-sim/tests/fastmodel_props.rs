//! Property-based tests of the analytical fast tier: random (valid)
//! machine configurations and random synthetic workloads must never
//! panic the evaluator, and every prediction must be physical —
//! positive finite cycles, bandwidth utilization capped at 100%, and
//! rates inside [0, 1].

use lv_sim::fastmodel::{evaluate, MemClass, Phase, Workload};
use lv_sim::MachineConfig;
use proptest::prelude::*;

/// A random but internally consistent memory class: touches split
/// between cold and reuse, beats/elems proportional to instructions.
fn mem_class(instrs: u64, vl: u64, cold: u64, resident_kib: u64, scalar: bool) -> MemClass {
    let lines = instrs * (4 * vl).div_ceil(64).max(1);
    MemClass {
        label: "fuzz",
        instrs,
        beats: instrs * vl.div_ceil(4).max(1),
        elems: instrs * vl,
        cold_lines: cold.min(lines),
        reuse_lines: lines - cold.min(lines),
        resident_bytes: resident_kib * 1024,
        gather_cycles: if scalar { 0 } else { instrs },
        scalar,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random valid configs x random workloads: no panic, physical output.
    #[test]
    fn predictions_are_always_physical(
        vlen_exp in 7usize..14,
        lanes_exp in 0usize..5,
        dec in any::<bool>(),
        l2_exp in 0usize..7,
        instrs in 1u64..4096,
        vl in 1u64..512,
        cold in 0u64..10_000,
        resident_kib in 0u64..4096,
        scalar in any::<bool>(),
        scale in 0.25f64..4.0,
    ) {
        let mut b = MachineConfig::builder()
            .vlen_bits(1 << vlen_exp)
            .lanes((1 << lanes_exp).min(1 << (vlen_exp - 5)))
            .l2_mib(1 << l2_exp);
        if dec {
            b = b.decoupled();
        }
        let cfg = b.build().expect("builder inputs are valid by construction");
        let vl = vl.min(cfg.vlen_elems() as u64);
        let w = Workload {
            phases: vec![Phase {
                label: "fuzz",
                vsetvls: instrs,
                scalar_ops: instrs / 2,
                arith_instrs: instrs,
                arith_beats: instrs * vl.div_ceil(cfg.elems_per_cycle() as u64).max(1),
                arith_elems: instrs * vl,
                flops: 2 * instrs * vl,
                mem: vec![
                    mem_class(instrs, vl, cold, resident_kib, scalar),
                    mem_class(instrs / 3 + 1, vl, cold / 2, resident_kib / 2, false),
                ],
                ..Default::default()
            }],
        };
        let p = evaluate(&cfg, &w, scale);
        prop_assert!(p.cycles >= 1, "cycles must be positive: {p:?}");
        prop_assert!(p.raw_cycles.is_finite() && p.raw_cycles > 0.0, "{p:?}");
        prop_assert!(p.bw_util.is_finite() && (0.0..=1.0).contains(&p.bw_util), "{p:?}");
        prop_assert!((0.0..=1.0).contains(&p.l2_miss_rate), "{p:?}");
        prop_assert!(p.avg_vl.is_finite() && p.avg_vl >= 0.0, "{p:?}");
        prop_assert!(p.avg_vl <= cfg.vlen_elems() as f64 + 1e-9, "{p:?}");
    }

    /// An empty workload is still physical (the 1-cycle floor holds).
    #[test]
    fn empty_workload_has_the_unit_floor(scale in 0.01f64..100.0) {
        let cfg = MachineConfig::rvv_integrated(512, 1);
        let p = evaluate(&cfg, &Workload { phases: vec![] }, scale);
        prop_assert!(p.cycles >= 1);
        prop_assert!((0.0..=1.0).contains(&p.bw_util));
    }
}

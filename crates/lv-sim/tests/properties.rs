//! Property-based tests of the machine model's invariants.

use lv_sim::{CacheGeometry, Machine, MachineConfig, VReg};
use proptest::prelude::*;

fn fma_workload(m: &mut Machine, n: usize, data: &[f32]) -> u64 {
    let mut i = 0;
    while i < n {
        let vl = m.vsetvl(n - i);
        m.vle32(VReg(1), &data[i..]);
        m.vfmacc_vf(VReg(0), 1.5, VReg(1));
        i += vl;
    }
    m.cycles()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Longer vectors never make a fixed streaming workload slower.
    #[test]
    fn longer_vectors_never_slower(n in 64usize..4096) {
        let data = vec![1.0f32; n];
        let mut last = u64::MAX;
        for vlen in [512usize, 1024, 2048, 4096, 8192] {
            let mut m = Machine::new(MachineConfig::rvv_integrated(vlen, 1));
            let c = fma_workload(&mut m, n, &data);
            prop_assert!(c <= last, "vlen {vlen}: {c} > previous {last}");
            last = c;
        }
    }

    /// A larger L2 never slows a repeated-sweep workload (inclusive LRU,
    /// same line costs).
    #[test]
    fn bigger_cache_never_slower(kb in 8usize..512) {
        let data = vec![1.0f32; kb * 256];
        let run = |l2_mib: usize| {
            let mut m = Machine::new(MachineConfig::rvv_integrated(512, l2_mib));
            for _ in 0..3 {
                fma_workload(&mut m, data.len(), &data);
            }
            m.cycles()
        };
        let small = run(1);
        let big = run(64);
        prop_assert!(big <= small, "64MB {big} > 1MB {small}");
    }

    /// More lanes never slow arithmetic down.
    #[test]
    fn more_lanes_never_slower(n in 64usize..2048) {
        let data = vec![1.0f32; n];
        let mut last = u64::MAX;
        for lanes in [2usize, 4, 8, 16] {
            let cfg = MachineConfig::builder().vlen_bits(2048).lanes(lanes).build().unwrap();
            let mut m = Machine::new(cfg);
            let c = fma_workload(&mut m, n, &data);
            prop_assert!(c <= last);
            last = c;
        }
    }

    /// Cycle counts are additive over instruction sequences (no hidden
    /// global state besides caches): running A then B costs the same as
    /// the sum measured with a stats snapshot between them.
    #[test]
    fn stats_deltas_are_additive(n in 16usize..512) {
        let data = vec![2.0f32; n];
        let mut m = Machine::new(MachineConfig::rvv_integrated(1024, 1));
        let c0 = m.cycles();
        fma_workload(&mut m, n, &data);
        let c1 = m.cycles();
        fma_workload(&mut m, n, &data);
        let c2 = m.cycles();
        prop_assert!(c1 - c0 >= c2 - c1, "warm pass should not exceed cold pass");
        prop_assert_eq!(m.stats().cycles, c2);
    }

    /// vsetvl grants exactly min(avl, MVL) and the granted length is what
    /// subsequent ops consume.
    #[test]
    fn vsetvl_contract(avl in 1usize..10_000, vlen_pow in 4u32..10) {
        let vlen = 1usize << vlen_pow; // elements: vlen/32... use bits
        let mut m = Machine::new(MachineConfig::rvv_integrated(512 << (vlen_pow - 4), 1));
        let mvl = m.mvl();
        let granted = m.vsetvl(avl);
        prop_assert_eq!(granted, avl.min(mvl));
        prop_assert_eq!(m.vl(), granted);
        let _ = vlen;
    }

    /// The register file faithfully stores and returns data for any vl.
    #[test]
    fn regfile_roundtrip(vals in proptest::collection::vec(-1e6f32..1e6, 1..128)) {
        let mut m = Machine::new(MachineConfig::rvv_integrated(4096, 1));
        let n = vals.len();
        let mut out = vec![0.0f32; n];
        let mut i = 0;
        while i < n {
            let vl = m.vsetvl(n - i);
            m.vle32(VReg(7), &vals[i..]);
            m.vse32(VReg(7), &mut out[i..]);
            i += vl;
        }
        prop_assert_eq!(out, vals);
    }

    /// Strided loads and unit-stride loads see the same data when stride=1.
    #[test]
    fn stride_one_equals_unit(vals in proptest::collection::vec(-1e3f32..1e3, 16..64)) {
        let mut m = Machine::new(MachineConfig::rvv_integrated(512, 1));
        let vl = m.vsetvl(16);
        m.vle32(VReg(0), &vals);
        m.vlse32(VReg(1), &vals, 1);
        prop_assert_eq!(m.read_reg(VReg(0)), m.read_reg(VReg(1)));
        let _ = vl;
    }
}

/// Cache associativity invariant: a working set of exactly `ways` lines in
/// one set never misses after warmup, `ways + 1` always does.
#[test]
fn associativity_boundary() {
    use lv_sim::Cache;
    let geo = CacheGeometry { size_bytes: 4 * 64 * 8, ways: 4, line_bytes: 64 }; // 8 sets
    let mut c = Cache::new(geo);
    let lines_same_set: Vec<u64> = (0..5).map(|i| 8 * i + 3).collect();
    // Warm 4 ways.
    for &l in &lines_same_set[..4] {
        c.access_line(l);
    }
    let m0 = c.misses();
    for _ in 0..10 {
        for &l in &lines_same_set[..4] {
            assert!(c.access_line(l));
        }
    }
    assert_eq!(c.misses(), m0);
    // A fifth line in the same set thrashes under LRU round-robin.
    let m1 = c.misses();
    for _ in 0..3 {
        for &l in &lines_same_set {
            c.access_line(l);
        }
    }
    assert!(c.misses() > m1);
}

/// Decoupled VPUs must match integrated functional results exactly.
#[test]
fn vpu_styles_agree_functionally() {
    let data: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
    let run = |cfg: MachineConfig| {
        let mut m = Machine::new(cfg);
        let mut out = vec![0.0f32; data.len()];
        let mut i = 0;
        while i < data.len() {
            let vl = m.vsetvl(data.len() - i);
            m.vle32(VReg(0), &data[i..]);
            m.vfmul_vf(VReg(1), 3.0, VReg(0));
            m.vse32(VReg(1), &mut out[i..]);
            i += vl;
        }
        out
    };
    assert_eq!(
        run(MachineConfig::rvv_integrated(512, 1)),
        run(MachineConfig::rvv_decoupled(512, 1))
    );
}

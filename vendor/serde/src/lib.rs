//! Offline shim for `serde`: marker traits plus no-op derives.
//!
//! Nothing in this workspace actually serializes data through serde — the
//! derives exist on a few structs for downstream-compatibility. The shim
//! keeps those `#[derive(Serialize, Deserialize)]` attributes compiling
//! without pulling in the real serde stack.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

//! Offline shim for `proptest`: deterministic random-search property tests.
//!
//! Provides the surface this workspace uses — the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, range/tuple/`Just`/`any`
//! strategies, `prop_oneof!`, `collection::vec`, `prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` macros. Unlike real proptest, failing
//! cases are not shrunk; the per-case seed is derived from the test name and
//! case index, so failures reproduce deterministically.

use std::ops::Range;

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// Value generator. The shim's analogue of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { base: self, f }
    }

    /// Box this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(move |rng| self.generate(rng)) }
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Uniform choice among boxed alternatives; built by `prop_oneof!`.
pub struct OneOf<T> {
    /// The alternatives to choose between.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u128 + off as u128) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Types with a canonical default strategy (`any::<T>()`).
pub trait Arbitrary {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Build it.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T> {
    gen_fn: fn(&mut TestRng) -> T,
}

impl<T> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyStrategy { gen_fn: |rng| rng.next_u64() & 1 == 1 }
    }
}

impl Arbitrary for u8 {
    type Strategy = AnyStrategy<u8>;

    fn arbitrary() -> Self::Strategy {
        AnyStrategy { gen_fn: |rng| rng.next_u64() as u8 }
    }
}

/// The canonical strategy for `T` — shim of `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: `len` elements of `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = self.len.start + if span > 0 { rng.below(span) } else { 0 };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-run configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Ignored; kept so `..ProptestConfig::default()` compiles.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, max_shrink_iters: 0 }
    }
}

/// FNV-1a over a test name, used for per-property seeding.
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ case.wrapping_mul(0x9E3779B97F4A7C15)
}

/// Assert inside a property; the shim maps it to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property; the shim maps it to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice between strategies, all yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf {
            options: vec![$($crate::Strategy::boxed($strat)),+],
        }
    };
}

/// Define property tests. Supports an optional `#![proptest_config(expr)]`
/// header followed by `fn name(pat in strategy, ...) { body }` items carrying
/// arbitrary attributes (including `#[test]` and doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expand each property fn into a looping `#[test]`-style fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new(
                    $crate::seed_for(stringify!($name), case),
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Glob-import entry point matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, bool)> {
        (1usize..10, prop_oneof![Just(true), Just(false)]).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Ranges stay in bounds and map applies.
        #[test]
        fn ranges_and_map(x in 5usize..50, (y, _b) in pair(), z in -1.0f64..1.0) {
            prop_assert!((5..50).contains(&x));
            prop_assert!(y % 2 == 0 && (2..20).contains(&y));
            prop_assert!((-1.0..1.0).contains(&z));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u32..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn any_bool_varies(b in any::<bool>(), c in any::<bool>()) {
            // Just exercise generation; equality is allowed.
            let _ = (b, c);
            prop_assert_eq!(b as u8 <= 1, true);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(seed_for_pub("x", 1), seed_for_pub("x", 1));
        assert_ne!(seed_for_pub("x", 1), seed_for_pub("y", 1));
    }

    fn seed_for_pub(name: &str, case: u64) -> u64 {
        crate::seed_for(name, case)
    }
}

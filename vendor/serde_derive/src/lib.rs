//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//! The real traits are blanket-implemented in the shim `serde` crate, so
//! the derives only need to swallow the attribute and emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

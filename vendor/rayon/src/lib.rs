//! Offline shim for `rayon`, covering the patterns this workspace uses:
//! `vec.into_par_iter().map(..)/.filter_map(..).collect()` plus
//! `ThreadPoolBuilder::new().num_threads(n).build_global()`.
//!
//! Work is distributed over `std::thread::scope` workers pulling from a
//! shared index-tagged worklist; results are re-sorted by input index, so
//! collection order matches the sequential iterator exactly. On a single
//! hardware thread this degenerates to a sequential pass.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The usual glob-import entry point.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelIterator};
}

/// Global worker-count override installed by [`ThreadPoolBuilder::build_global`];
/// 0 means "use [`std::thread::available_parallelism`]".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// API-compatible subset of rayon's global pool configuration. Only
/// `num_threads` is honoured; everything else about real rayon's pool
/// (work stealing granularity, stack sizes) has no analogue here.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count (0 restores the host-parallelism default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally. Unlike real rayon this cannot
    /// fail and may be called repeatedly; the last call wins.
    pub fn build_global(self) -> Result<(), std::convert::Infallible> {
        NUM_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// The configured worker count: the `build_global` override if set, else
/// host parallelism.
pub fn current_num_threads() -> usize {
    match NUM_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Conversion into a (shim) parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Build the parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Minimal parallel-iterator surface: adapters plus `collect`.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Drain into index-tagged pairs, preserving input order in the tag.
    fn drive(self) -> Vec<(usize, Self::Item)>;

    /// Map adapter.
    fn map<U: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    /// Filter-map adapter.
    fn filter_map<U: Send, F>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<U> + Sync,
    {
        FilterMap { base: self, f }
    }

    /// Collect results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        let mut tagged = self.drive();
        tagged.sort_by_key(|(i, _)| *i);
        tagged.into_iter().map(|(_, v)| v).collect()
    }
}

/// Root iterator over a `Vec`.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;

    fn drive(self) -> Vec<(usize, T)> {
        self.items.into_iter().enumerate().collect()
    }
}

/// `map` adapter: applies `f` across worker threads.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    U: Send,
    F: Fn(B::Item) -> U + Sync,
{
    type Item = U;

    fn drive(self) -> Vec<(usize, U)> {
        let f = &self.f;
        run_tagged(self.base.drive(), move |v| Some(f(v)))
    }
}

/// `filter_map` adapter: applies `f` across worker threads, dropping `None`.
pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    U: Send,
    F: Fn(B::Item) -> Option<U> + Sync,
{
    type Item = U;

    fn drive(self) -> Vec<(usize, U)> {
        let f = &self.f;
        run_tagged(self.base.drive(), f)
    }
}

/// Run `f` over the tagged worklist on as many threads as the host offers.
fn run_tagged<T: Send, U: Send>(
    input: Vec<(usize, T)>,
    f: impl Fn(T) -> Option<U> + Sync,
) -> Vec<(usize, U)> {
    let threads = current_num_threads().min(input.len().max(1));
    if threads <= 1 {
        return input.into_iter().filter_map(|(i, v)| f(v).map(|u| (i, u))).collect();
    }
    let work = Mutex::new(input.into_iter());
    let out = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let item = work.lock().unwrap().next();
                match item {
                    Some((i, v)) => {
                        if let Some(u) = f(v) {
                            out.lock().unwrap().push((i, u));
                        }
                    }
                    None => break,
                }
            });
        }
    });
    out.into_inner().unwrap()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_drops_and_orders() {
        let v: Vec<usize> = (0..100).collect();
        let evens: Vec<usize> =
            v.into_par_iter().filter_map(|x| (x % 2 == 0).then_some(x)).collect();
        assert_eq!(evens, (0..100).filter(|x| x % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<usize> = Vec::new();
        let out: Vec<usize> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn forced_multi_thread_pool_preserves_order() {
        // Even on a single-core host, an explicit num_threads > 1 takes the
        // threaded path; order must still match the sequential iterator.
        super::ThreadPoolBuilder::new().num_threads(3).build_global().unwrap();
        assert_eq!(super::current_num_threads(), 3);
        let v: Vec<usize> = (0..257).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..258).collect::<Vec<_>>());
        super::ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
    }
}

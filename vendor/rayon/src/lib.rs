//! Offline shim for `rayon`, covering the one pattern this workspace uses:
//! `vec.into_par_iter().map(..)/.filter_map(..).collect()`.
//!
//! Work is distributed over `std::thread::scope` workers pulling from a
//! shared index-tagged worklist; results are re-sorted by input index, so
//! collection order matches the sequential iterator exactly. On a single
//! hardware thread this degenerates to a sequential pass.

use std::sync::Mutex;

/// The usual glob-import entry point.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a (shim) parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Build the parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Minimal parallel-iterator surface: adapters plus `collect`.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Drain into index-tagged pairs, preserving input order in the tag.
    fn drive(self) -> Vec<(usize, Self::Item)>;

    /// Map adapter.
    fn map<U: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    /// Filter-map adapter.
    fn filter_map<U: Send, F>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<U> + Sync,
    {
        FilterMap { base: self, f }
    }

    /// Collect results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        let mut tagged = self.drive();
        tagged.sort_by_key(|(i, _)| *i);
        tagged.into_iter().map(|(_, v)| v).collect()
    }
}

/// Root iterator over a `Vec`.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;

    fn drive(self) -> Vec<(usize, T)> {
        self.items.into_iter().enumerate().collect()
    }
}

/// `map` adapter: applies `f` across worker threads.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    U: Send,
    F: Fn(B::Item) -> U + Sync,
{
    type Item = U;

    fn drive(self) -> Vec<(usize, U)> {
        let f = &self.f;
        run_tagged(self.base.drive(), move |v| Some(f(v)))
    }
}

/// `filter_map` adapter: applies `f` across worker threads, dropping `None`.
pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    U: Send,
    F: Fn(B::Item) -> Option<U> + Sync,
{
    type Item = U;

    fn drive(self) -> Vec<(usize, U)> {
        let f = &self.f;
        run_tagged(self.base.drive(), f)
    }
}

/// Run `f` over the tagged worklist on as many threads as the host offers.
fn run_tagged<T: Send, U: Send>(
    input: Vec<(usize, T)>,
    f: impl Fn(T) -> Option<U> + Sync,
) -> Vec<(usize, U)> {
    let threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(input.len().max(1));
    if threads <= 1 {
        return input.into_iter().filter_map(|(i, v)| f(v).map(|u| (i, u))).collect();
    }
    let work = Mutex::new(input.into_iter());
    let out = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let item = work.lock().unwrap().next();
                match item {
                    Some((i, v)) => {
                        if let Some(u) = f(v) {
                            out.lock().unwrap().push((i, u));
                        }
                    }
                    None => break,
                }
            });
        }
    });
    out.into_inner().unwrap()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_drops_and_orders() {
        let v: Vec<usize> = (0..100).collect();
        let evens: Vec<usize> =
            v.into_par_iter().filter_map(|x| (x % 2 == 0).then_some(x)).collect();
        assert_eq!(evens, (0..100).filter(|x| x % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<usize> = Vec::new();
        let out: Vec<usize> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}

//! Offline shim for the `rand` crate, covering the API surface this
//! workspace uses: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}` and `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! and statistically solid for simulation workloads, but its streams are
//! NOT bit-compatible with upstream rand 0.8.

use std::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is shimmed).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open) range. Panics on empty ranges.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform f64 in [0, 1) from 64 random bits (53-bit mantissa path).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Lemire multiply-shift; bias is < 2^-64 per draw.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty f64 range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty f32 range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the shim's stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and element choice on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000usize), b.gen_range(0..1_000_000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| {
            StdRng::seed_from_u64(7); // noop, keep closure simple
            a.gen_range(0..1_000_000usize) == c.gen_range(0..1_000_000usize)
        });
        assert!(!same);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0..0.5f64);
            assert!((-2.0..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut r = StdRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
        assert!(v.choose(&mut r).is_some());
    }

    #[test]
    fn mean_of_unit_range_is_half() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0..1.0f64)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}

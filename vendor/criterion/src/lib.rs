//! Offline shim for `criterion`: runs each benchmark body a few times and
//! prints a single wall-clock figure. Good enough for smoke-running
//! `cargo bench` and coarse comparisons; NOT a statistical benchmark
//! harness (no warmup control, outlier rejection, or regression tracking).

use std::fmt::Display;
use std::time::Instant;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { _priv: () }
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup {
    _priv: (),
}

impl BenchmarkGroup {
    /// Accepted for compatibility; the shim always runs a fixed few samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    /// Run a parameterised benchmark inside this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by its parameter value.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        Self(p.to_string())
    }

    /// Identify a benchmark by function name and parameter value.
    pub fn new<P: Display>(name: &str, p: P) -> Self {
        Self(format!("{name}/{p}"))
    }
}

/// Declared throughput of a benchmark (ignored by the shim).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark body; `iter` runs and times the routine.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine` over a few iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const ITERS: usize = 3;
        for _ in 0..ITERS {
            let t0 = Instant::now();
            let out = routine();
            self.samples.push(t0.elapsed().as_secs_f64());
            drop(out);
        }
    }
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new() };
    f(&mut b);
    let best = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
    if best.is_finite() {
        println!("  {id}: {:.3} ms/iter (best of {})", best * 1e3, b.samples.len());
    } else {
        println!("  {id}: no samples");
    }
}

/// Collect benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! A miniature co-design sweep: one VGG-16 layer across vector lengths and
//! L2 sizes, printing which algorithm wins each design point — the essence
//! of the paper's Figs. 3-8 on a laptop-friendly scale.
//!
//! ```text
//! cargo run --release -p lvconv --example codesign_sweep [scale]
//! ```

use lvconv::conv::ALL_ALGOS;
use lvconv::models::measure_layer;
use lvconv::models::zoo;
use lvconv::sim::MachineConfig;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    // VGG-16 layer 5 (128 -> 256 @ 56): a contested layer where Winograd,
    // GEMM and Direct all win somewhere in the design space.
    let shape = zoo::vgg16().conv_shapes()[4].scaled(scale);
    println!("co-design sweep of VGG-16 layer 5 scaled by {scale}: {shape:?}\n");
    println!("{:>10} | {:>6} | winner (cycles)", "vlen", "L2");
    println!("{:->55}", "");
    for vlen in [512usize, 1024, 2048, 4096] {
        for l2 in [1usize, 4, 16, 64] {
            let cfg = MachineConfig::rvv_integrated(vlen, l2);
            let best = ALL_ALGOS
                .iter()
                .filter_map(|&a| measure_layer(&cfg, &shape, a).map(|m| (a, m.cycles)))
                .min_by_key(|&(_, c)| c)
                .expect("some algorithm applies");
            println!("{:>9}b | {:>4}MB | {:22} ({})", vlen, l2, best.0.name(), best.1);
        }
    }
    println!(
        "\nThe winning algorithm moves across the design space: blocking pays off\n\
         in tight caches, the 3-loop GEMM overtakes once its panels fit, and the\n\
         Direct kernel wins once vectors are long enough — the co-design\n\
         interactions of the paper's §4.2 (run `repro fig3`..`fig8` for all\n\
         layers at full scale)."
    );
}

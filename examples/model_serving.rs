//! Model serving: co-locate CNN replicas on a multicore long-vector chip
//! with CAT-style L2 partitioning, measure per-replica inference latency
//! on the simulated machine, then drive an open-loop serving simulation to
//! see throughput and tail latency — the paper's deployment scenario.
//!
//! ```text
//! cargo run --release -p lvconv --example model_serving [scale]
//! ```

use lvconv::area::chip_area_mm2;
use lvconv::conv::ALL_ALGOS;
use lvconv::models::{measure_layer, zoo};
use lvconv::serving::{partition_l2, ServingConfig, ServingSim};
use lvconv::sim::MachineConfig;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let model = zoo::vgg16();
    let layers: Vec<_> = model.conv_shapes().iter().map(|s| s.scaled(scale)).collect();
    let vlen = 2048;
    let shared_l2 = 64; // MiB
    let measured = [1usize, 4, 16, 64];

    println!("serving VGG-16 (conv stack scaled by {scale}) on a {vlen}-bit multicore chip");
    println!("shared L2 = {shared_l2} MiB, equal CAT partitions\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "replicas", "L2/model", "latency", "capacity", "p99@70%", "util", "area"
    );

    for replicas in [1usize, 2, 4, 8] {
        let Some(part) = partition_l2(shared_l2, replicas, &measured) else {
            println!("{replicas:>8} -- partition too small, skipped");
            continue;
        };
        // Per-image latency: best algorithm per layer at this partition.
        let cfg = MachineConfig::rvv_integrated(vlen, part);
        let cycles: u64 = layers
            .iter()
            .map(|s| {
                ALL_ALGOS
                    .iter()
                    .filter_map(|&a| measure_layer(&cfg, s, a).map(|m| m.cycles))
                    .min()
                    .unwrap()
            })
            .sum();
        let service_s = cycles as f64 / 2e9;
        let capacity = replicas as f64 / service_s;
        let sim = ServingSim::new(ServingConfig {
            replicas,
            service_time_s: service_s,
            arrival_rate: 0.7 * capacity,
            requests: 5000,
            seed: 11,
        })
        .expect("serving config is valid by construction");
        let rep = sim.run();
        println!(
            "{:>8} {:>8}MB {:>9.2}ms {:>8.1}img/s {:>8.2}ms {:>9.0}% {:>7.1}mm2",
            replicas,
            part,
            service_s * 1e3,
            capacity,
            rep.p99_latency_s * 1e3,
            100.0 * rep.utilization,
            chip_area_mm2(replicas, vlen, shared_l2),
        );
    }
    println!(
        "\nCo-location trades per-replica cache for parallel replicas: throughput\n\
         scales with replica count long before the smaller partition hurts —\n\
         the effect behind the paper's Fig. 12 Pareto frontier."
    );
}

//! Future work from the thesis: vision-transformer self-attention on the
//! long-vector machine. The thesis notes ViT matrices are "skinny and
//! irregular, making it challenging to utilize long vector lengths" and
//! that data movement between the two matrix multiplies and the softmax
//! dominates. This example builds one self-attention head from the GEMM
//! kernels and measures exactly that: GEMM-vs-softmax cycle split and how
//! poorly skinny attention matrices scale with vector length compared to a
//! convolutional layer.
//!
//! ```text
//! cargo run --release -p lvconv --example attention
//! ```

use lvconv::conv::gemm3::gemm3_kernel;
use lvconv::sim::{Machine, MachineConfig, VReg};
use lvconv::tensor::pseudo_buf;

/// Row-wise softmax over an `n x n` score matrix, vectorized per row
/// (max, exp via a 4-op polynomial cost, normalize).
fn softmax_rows(m: &mut Machine, scores: &mut [f32], n: usize) {
    let v = VReg(0);
    for r in 0..n {
        let row = &mut scores[r * n..(r + 1) * n];
        // Max (vector reduce per chunk, scalar combine).
        let mut mx = f32::NEG_INFINITY;
        for x in row.iter() {
            mx = mx.max(*x);
        }
        m.scalar_ops(n as u64); // reduce bookkeeping
        let mut sum = 0.0f32;
        let mut x = 0;
        while x < n {
            let vl = m.vsetvl(n - x);
            m.vle32(v, &row[x..]);
            m.vfadd_vf(v, -mx, v);
            // exp(): modeled as 4 vector ops (polynomial), computed host-side.
            m.vfmul_vf(v, 1.0, v);
            m.vfmul_vf(v, 1.0, v);
            m.vfmul_vf(v, 1.0, v);
            for e in row[x..x + vl].iter_mut() {
                *e = (*e - mx).exp();
                sum += *e;
            }
            x += vl;
        }
        let inv = 1.0 / sum;
        let mut x = 0;
        while x < n {
            let vl = m.vsetvl(n - x);
            m.vle32(v, &row[x..]);
            m.vfmul_vf(v, inv, v);
            m.vse32(v, &mut row[x..]);
            x += vl;
        }
    }
}

/// One self-attention head: scores = Q K^T / sqrt(d); P = softmax(scores);
/// out = P V. Returns (total cycles, gemm cycles, softmax cycles).
fn attention(cfg: MachineConfig, n_tokens: usize, d: usize) -> (u64, u64, u64) {
    let mut m = Machine::new(cfg);
    let q = pseudo_buf(n_tokens * d, 1);
    let kt = pseudo_buf(d * n_tokens, 2); // K already transposed (d x n)
    let v = pseudo_buf(n_tokens * d, 3);
    let mut scores = vec![0.0f32; n_tokens * n_tokens];
    let mut out = vec![0.0f32; n_tokens * d];

    let t0 = m.cycles();
    gemm3_kernel(&mut m, n_tokens, d, n_tokens, &q, &kt, &mut scores);
    let scale = 1.0 / (d as f32).sqrt();
    let vr = VReg(0);
    let mut x = 0;
    while x < scores.len() {
        let vl = m.vsetvl(scores.len() - x);
        m.vle32(vr, &scores[x..]);
        m.vfmul_vf(vr, scale, vr);
        m.vse32(vr, &mut scores[x..]);
        x += vl;
    }
    let t1 = m.cycles();
    softmax_rows(&mut m, &mut scores, n_tokens);
    let t2 = m.cycles();
    gemm3_kernel(&mut m, n_tokens, n_tokens, d, &scores, &v, &mut out);
    let t3 = m.cycles();
    (t3 - t0, (t1 - t0) + (t3 - t2), t2 - t1)
}

fn main() {
    println!("self-attention head on the simulated long-vector machine (thesis future work)\n");
    println!(
        "{:>8} {:>6} | {:>12} {:>8} {:>9} | VL scaling 512b->4096b",
        "tokens", "d", "cycles@512b", "gemm%", "softmax%"
    );
    for (n, d) in [(196usize, 64usize), (196, 128), (576, 64)] {
        let (c512, g512, s512) = attention(MachineConfig::rvv_integrated(512, 4), n, d);
        let (c4096, _, _) = attention(MachineConfig::rvv_integrated(4096, 4), n, d);
        println!(
            "{:>8} {:>6} | {:>12} {:>7.1}% {:>8.1}% | {:.2}x",
            n,
            d,
            c512,
            100.0 * g512 as f64 / c512 as f64,
            100.0 * s512 as f64 / c512 as f64,
            c512 as f64 / c4096 as f64,
        );
    }
    // Contrast: a conv layer of comparable FLOPs scales better.
    let s = lvconv::tensor::ConvShape::same_pad(64, 256, 56, 3, 1);
    let c512 = lvconv::models::measure_layer(
        &MachineConfig::rvv_integrated(512, 4),
        &s,
        lvconv::conv::Algo::Direct,
    )
    .unwrap()
    .cycles;
    let c4096 = lvconv::models::measure_layer(
        &MachineConfig::rvv_integrated(4096, 4),
        &s,
        lvconv::conv::Algo::Direct,
    )
    .unwrap()
    .cycles;
    println!(
        "\nreference conv (64->256 @56, Direct): VL scaling {:.2}x —\n\
         attention's skinny d-dimension GEMMs and softmax passes blunt long-vector\n\
         scaling, matching the thesis's motivation for data-reuse/fusion work on ViTs.",
        c512 as f64 / c4096 as f64
    );
}

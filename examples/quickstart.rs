//! Quickstart: simulate one convolutional layer with every algorithm on
//! two hardware design points and print the comparison.
//!
//! ```text
//! cargo run --release -p lvconv --example quickstart
//! ```

use lvconv::conv::{prepare_weights, run_conv, Algo, ALL_ALGOS};
use lvconv::sim::{Machine, MachineConfig};
use lvconv::tensor::{pseudo_buf, pseudo_weights, ConvShape};

fn main() {
    // A YOLOv3-like middle layer, spatially scaled down so the example
    // finishes in a couple of seconds.
    let shape = ConvShape::same_pad(64, 128, 76, 3, 1);
    println!(
        "layer: {}x{}x{} -> {}x{}x{}, {}x{} kernel, stride {}\n",
        shape.ic,
        shape.ih,
        shape.iw,
        shape.oc,
        shape.oh(),
        shape.ow(),
        shape.kh,
        shape.kw,
        shape.stride
    );

    let input = pseudo_buf(shape.input_len(), 1);
    let weights = pseudo_weights(shape.weight_len(), shape.ic * 9, 2);

    for (label, cfg) in [
        ("512-bit vectors, 1 MiB L2 ", MachineConfig::rvv_integrated(512, 1)),
        ("4096-bit vectors, 16 MiB L2", MachineConfig::rvv_integrated(4096, 16)),
    ] {
        println!("== {label} ==");
        let mut best: Option<(Algo, u64)> = None;
        for algo in ALL_ALGOS {
            if !algo.applicable(&shape) {
                continue;
            }
            let prepared = prepare_weights(algo, &shape, &weights);
            let mut out = vec![0.0f32; shape.output_len()];
            let mut m = Machine::new(cfg);
            run_conv(&mut m, algo, &shape, &input, &prepared, &mut out);
            let st = m.stats();
            println!(
                "  {:22} {:>12} cycles  ({:.3} ms @2GHz, avg VL {:6.1} elems, L2 miss {:4.1}%)",
                algo.name(),
                st.cycles,
                st.cycles as f64 / 2e6,
                st.avg_vl(),
                100.0 * st.l2_miss_rate()
            );
            if best.is_none_or(|(_, c)| st.cycles < c) {
                best = Some((algo, st.cycles));
            }
        }
        let (algo, _) = best.unwrap();
        println!("  -> fastest: {}\n", algo.name());
    }
    println!(
        "The winner flips with the hardware parameters — exactly the co-design\n\
         interaction the paper studies. See `repro all` for the full figures."
    );
}

//! Train the random-forest algorithm selector on a (scaled-down) co-design
//! grid and use it to pick per-layer algorithms, comparing against the
//! oracle and the best single algorithm — the paper's §4.3 in miniature.
//!
//! ```text
//! cargo run --release -p lvconv --example algorithm_selection [scale]
//! ```

use lvconv::bench::grid::{paper2_points, run_points};
use lvconv::bench::selector::{dataset_from_grid, evaluate_selector};
use lvconv::forest::ForestParams;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.12);
    eprintln!("simulating the co-design grid at scale {scale} (this takes ~a minute)...");
    let rows = run_points(paper2_points(scale), false);
    let (ds, _) = dataset_from_grid(&rows);
    println!("dataset: {} labeled points, {} features\n", ds.len(), ds.n_features());

    let eval = evaluate_selector(&rows, ForestParams::default());
    println!(
        "5-fold cross-validated accuracy: {:.1}% (paper: 92.8% at full scale)",
        100.0 * eval.cv.mean_accuracy
    );
    println!("misprediction cost (MAPE): {:.1}% (paper: 20.4%)\n", eval.mispredict_mape);

    println!("baseline classifiers on the same data:");
    for (name, acc) in &eval.baselines {
        println!("  {name:16} {:.1}%", 100.0 * acc);
    }

    println!("\ntop feature importances:");
    let mut imp = eval.importances.clone();
    imp.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, v) in imp.iter().take(6) {
        println!("  {name:12} {v:.3}");
    }
    println!(
        "\nThe hardware features (vlen, L2) rank alongside the layer dimensions:\n\
         the best algorithm is a property of the (layer, machine) pair, which is\n\
         why the paper argues for runtime selection in model serving."
    );
}

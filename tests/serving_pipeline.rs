//! Grid → selector → serving engine, end to end at one configuration:
//! the machinery behind the `serve` artifact, on a scaled-down grid.
//!
//! Measured per-layer cycles feed the random-forest selector (trained
//! once, reused via `predict_batch`); the resulting per-policy network
//! service times drive the multi-replica serving engine, and the
//! capacity ordering Optimal <= Predicted/Direct must come out the way
//! Figs. 9/10 imply.

use lvconv::bench::grid::{policy_cycles, run_points, SimPoint};
use lvconv::bench::selector::{dataset_from_grid, features_of};
use lvconv::conv::{Algo, ALL_ALGOS};
use lvconv::forest::{ForestParams, RandomForest};
use lvconv::serving::{partition_l2, BatchPolicy, EngineConfig, RequestClass, ServingEngine};
use lvconv::sim::MachineConfig;
use lvconv::tensor::ConvShape;

/// The serving config under test: 2 replicas of a 1024-bit core, 8 MiB
/// shared L2 CAT-partitioned into the measured 4 MiB slices.
const VLEN: usize = 1024;
const REPLICAS: usize = 2;

fn small_grid() -> Vec<lvconv::bench::grid::GridRow> {
    let layers = [
        ConvShape::same_pad(3, 16, 48, 3, 1),
        ConvShape::same_pad(16, 32, 24, 3, 1),
        ConvShape::same_pad(32, 16, 24, 1, 1),
        ConvShape::same_pad(16, 32, 24, 3, 2),
        ConvShape::same_pad(64, 64, 6, 3, 1),
        ConvShape::same_pad(8, 64, 12, 3, 1),
    ];
    let mut pts = Vec::new();
    for (i, s) in layers.iter().enumerate() {
        for vlen in [512usize, VLEN, 2048] {
            for l2 in [1usize, 4] {
                for algo in ALL_ALGOS {
                    pts.push(SimPoint {
                        model: "small".into(),
                        layer: i + 1,
                        shape: *s,
                        cfg: MachineConfig::rvv_integrated(vlen, l2),
                        algo,
                    });
                }
            }
        }
    }
    run_points(pts, false)
}

#[test]
fn grid_to_selector_to_serving_pipeline() {
    let rows = small_grid();
    let l2 = partition_l2(8, REPLICAS, &[1, 4]).expect("8 MiB / 2 replicas = 4 MiB, measured");
    assert_eq!(l2, 4);

    // Train the forest once on the measured grid, then classify every
    // layer of the deployed config in one pass (the serving-reuse API).
    let (ds, _keys) = dataset_from_grid(&rows);
    let forest = RandomForest::fit(&ds, ForestParams { n_trees: 40, ..Default::default() });
    let shapes: Vec<(usize, ConvShape)> = {
        let mut seen = std::collections::BTreeMap::new();
        for r in rows.iter().filter(|r| r.vlen_bits == VLEN && r.l2_mib == l2) {
            seen.entry(r.layer).or_insert(r.shape);
        }
        seen.into_iter().collect()
    };
    assert_eq!(shapes.len(), 6);
    let feats: Vec<Vec<f64>> = shapes.iter().map(|(_, s)| features_of(s, VLEN, l2)).collect();
    let picks = forest.predict_batch(&feats);
    assert_eq!(picks.len(), shapes.len());

    // Per-policy network service time at 2 GHz.
    let secs = |cycles: u64| cycles as f64 / 2e9;
    let stack = |pol: Option<Algo>| -> u64 {
        shapes
            .iter()
            .map(|(l, _)| policy_cycles(&rows, "small", *l, VLEN, l2, pol).unwrap_or(0))
            .sum()
    };
    let direct = stack(Some(Algo::Direct));
    let optimal = stack(None);
    let predicted: u64 = shapes
        .iter()
        .zip(&picks)
        .map(|((l, _), &p)| {
            policy_cycles(&rows, "small", *l, VLEN, l2, Some(Algo::from_label(p)))
                .or_else(|| policy_cycles(&rows, "small", *l, VLEN, l2, None))
                .unwrap_or(0)
        })
        .sum();
    assert!(optimal > 0 && direct >= optimal, "oracle can't lose to Direct");
    assert!(predicted >= optimal, "predictions can't beat the oracle");

    // Serve each policy at the same offered load past Direct's capacity:
    // the faster stacks must complete more work with fewer drops.
    let offered = 1.4 * REPLICAS as f64 / secs(direct);
    let serve = |service_s: f64| {
        let cfg = EngineConfig {
            replicas: REPLICAS,
            classes: RequestClass::uniform(service_s),
            arrival_rate: offered,
            requests: 4000,
            queue_capacity: 32,
            deadline_s: None,
            batch: BatchPolicy::none(),
            batch_setup_frac: 0.0,
            seed: 7,
            slice_s: 0.0,
        };
        ServingEngine::new(cfg).expect("valid config").run()
    };
    let rep_direct = serve(secs(direct));
    let rep_optimal = serve(secs(optimal));
    let rep_predicted = serve(secs(predicted));

    // Past saturation the bounded queue sheds and achieved rps tracks the
    // per-policy capacity, so the Fig. 9/10 ordering shows up in serving.
    assert!(rep_direct.drop_rate > 0.05, "1.4x capacity must shed");
    assert!(
        rep_optimal.achieved_rps >= rep_direct.achieved_rps * 0.999,
        "optimal capacity {} below direct {}",
        rep_optimal.achieved_rps,
        rep_direct.achieved_rps
    );
    assert!(
        rep_predicted.achieved_rps >= rep_direct.achieved_rps * 0.999,
        "predicted capacity {} below direct {}",
        rep_predicted.achieved_rps,
        rep_direct.achieved_rps
    );
    // Everyone's p99 stays finite and bounded by queue drain time.
    let bound = (32.0 / REPLICAS as f64 + 2.0) * secs(direct);
    for rep in [&rep_direct, &rep_optimal, &rep_predicted] {
        assert!(rep.latency.p99_s.is_finite() && rep.latency.p99_s <= bound);
        assert!(rep.completed > 0);
    }
}

//! Cross-crate functional validation: every vectorized algorithm, on any
//! machine configuration, must agree with the golden scalar convolution.
//! Property-based: shapes, strides, kernels and vector lengths are drawn
//! at random.

use lvconv::conv::{prepare_weights, run_conv, Algo, ALL_ALGOS};
use lvconv::sim::{Machine, MachineConfig, VpuStyle};
use lvconv::tensor::{conv2d_reference, max_rel_error, pseudo_buf, ConvShape};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = ConvShape> {
    (1usize..12, 1usize..20, prop_oneof![Just(1usize), Just(3)], 1usize..3, 6usize..26).prop_map(
        |(ic, oc, k, stride, hw)| ConvShape {
            ic,
            oc,
            ih: hw,
            iw: hw,
            kh: k,
            kw: k,
            stride: if k == 1 { 1 } else { stride },
            pad: k / 2,
        },
    )
}

fn check(algo: Algo, s: &ConvShape, vlen: usize, decoupled: bool) {
    let input = pseudo_buf(s.input_len(), 3);
    let w = pseudo_buf(s.weight_len(), 4);
    let prepared = prepare_weights(algo, s, &w);
    let mut out = vec![0.0f32; s.output_len()];
    let cfg = if decoupled {
        MachineConfig::rvv_decoupled(vlen, 1)
    } else {
        MachineConfig::rvv_integrated(vlen, 1)
    };
    let mut m = Machine::new(cfg);
    run_conv(&mut m, algo, s, &input, &prepared, &mut out);
    let want = conv2d_reference(s, &input, &w);
    let tol = if algo == Algo::Winograd { 5e-2 } else { 1e-3 };
    let err = max_rel_error(&out, &want);
    assert!(err < tol, "{algo:?} err {err} on {s:?} vlen {vlen} dec {decoupled}");
    assert!(m.cycles() > 0);
    assert_eq!(m.config().vpu, cfg.vpu);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_algorithms_match_reference(
        s in arb_shape(),
        vlen_pow in 9u32..13, // 512..4096 bits
        decoupled in any::<bool>(),
    ) {
        let vlen = 1usize << vlen_pow;
        for algo in ALL_ALGOS {
            if algo.applicable(&s) {
                check(algo, &s, vlen, decoupled);
            }
        }
    }

    #[test]
    fn direct_handles_extreme_aspect_ratios(
        ic in 1usize..6,
        oc in prop_oneof![Just(1usize), Just(3), Just(40), Just(70)],
        hw in 6usize..20,
    ) {
        let s = ConvShape::same_pad(ic, oc, hw, 3, 1);
        check(Algo::Direct, &s, 512, false);
        check(Algo::Direct, &s, 4096, false);
    }
}

#[test]
fn paper_layer_shapes_validate() {
    // One representative layer from each regime of Table 1, scaled down.
    for (s, algo) in [
        (ConvShape::same_pad(3, 32, 38, 3, 1), Algo::Direct), // YOLO L1-like
        (ConvShape::same_pad(32, 64, 38, 3, 2), Algo::Gemm3), // strided
        (ConvShape::same_pad(64, 32, 19, 1, 1), Algo::Gemm6), // 1x1
        (ConvShape::same_pad(32, 64, 19, 3, 1), Algo::Winograd), // 3x3 s1
    ] {
        check(algo, &s, 1024, false);
    }
}

#[test]
fn winograd_exact_on_smooth_kernel() {
    // An all-ones kernel on an all-ones image: Winograd must reproduce the
    // box-filter counts to float precision in the interior.
    let s = ConvShape::same_pad(1, 1, 18, 3, 1);
    let input = vec![1.0f32; s.input_len()];
    let w = vec![1.0f32; 9];
    let prepared = prepare_weights(Algo::Winograd, &s, &w);
    let mut out = vec![0.0f32; s.output_len()];
    let mut m = Machine::new(MachineConfig::default());
    run_conv(&mut m, Algo::Winograd, &s, &input, &prepared, &mut out);
    // Interior pixel sees 9 ones.
    let mid = (s.oh() / 2) * s.ow() + s.ow() / 2;
    assert!((out[mid] - 9.0).abs() < 1e-3, "got {}", out[mid]);
    // Corner sees 4.
    assert!((out[0] - 4.0).abs() < 1e-3, "got {}", out[0]);
}

#[test]
fn decoupled_machine_reports_no_l1_vector_traffic() {
    let s = ConvShape::same_pad(4, 8, 16, 3, 1);
    let input = pseudo_buf(s.input_len(), 1);
    let w = pseudo_buf(s.weight_len(), 2);
    let prepared = prepare_weights(Algo::Gemm3, &s, &w);
    let mut out = vec![0.0f32; s.output_len()];
    let mut m = Machine::new(MachineConfig::rvv_decoupled(512, 1));
    run_conv(&mut m, Algo::Gemm3, &s, &input, &prepared, &mut out);
    let dec = m.stats();
    assert_eq!(m.config().vpu, VpuStyle::Decoupled);
    let mut m2 = Machine::new(MachineConfig::rvv_integrated(512, 1));
    run_conv(&mut m2, Algo::Gemm3, &s, &input, &prepared, &mut out);
    let int = m2.stats();
    // Scalar A-broadcasts still go through L1 on both machines, but the
    // vector traffic bypasses L1 only on the decoupled one: its L1 sees
    // far fewer accesses while its L2 sees more.
    assert!(
        dec.l1_accesses < int.l1_accesses,
        "dec L1 {} vs int L1 {}",
        dec.l1_accesses,
        int.l1_accesses
    );
    assert!(
        dec.l2_accesses > int.l2_accesses,
        "dec L2 {} vs int L2 {}",
        dec.l2_accesses,
        int.l2_accesses
    );
}

//! Cross-crate conformance smoke: the `lv-check` differential harness,
//! exercised through the `lvconv` facade exactly the way `repro check`
//! drives it — every kernel variant against the f64 oracle under derived
//! tolerances, with the simulator invariant lint enabled. A full sweep
//! lives behind `repro check [--deep]`; this keeps a fast slice of it in
//! the tier-1 test suite.

use lvconv::check::{check_conv_shape, fuzz_shapes, machine_points, CheckConfig};
use lvconv::tensor::ConvShape;

#[test]
fn every_kernel_matches_the_oracle_on_a_representative_shape() {
    let machines = machine_points(false);
    let mut lint_checks = 0u64;
    // All-algorithms-applicable shape: 3x3 stride-1 same-pad.
    let cells =
        check_conv_shape(&ConvShape::same_pad(3, 5, 12, 3, 1), &machines, 0, &mut lint_checks);
    assert!(!cells.is_empty());
    assert!(lint_checks > 0, "the invariant lint must observe every cell");
    for c in &cells {
        assert!(
            c.pass(),
            "{} on {} for {}: max_abs_err {:.3e} exceeds bound {:.3e} ({})",
            c.kernel,
            c.machine,
            c.shape,
            c.max_abs_err,
            c.bound_at_max,
            c.detail,
        );
    }
    // Direct variants, both GEMMs (three blockings) and three Winograd
    // tile sizes, per machine point.
    assert_eq!(cells.len() % machines.len(), 0);
    assert!(cells.len() / machines.len() >= 10, "expected full kernel coverage per machine");
}

#[test]
fn fuzzer_seed_is_reproducible_through_the_facade() {
    let a = fuzz_shapes(42, 12, false);
    let b = fuzz_shapes(42, 12, false);
    assert_eq!(a, b, "same seed must draw the same shape sequence");
    let c = fuzz_shapes(43, 12, false);
    assert_ne!(a, c, "different seeds must explore different shapes");
    assert_eq!(CheckConfig::default().seed, 42, "repro check defaults to seed 42");
}

//! End-to-end network runs: full graphs (conv + pool + shortcut + route +
//! upsample + fc + softmax) execute on the simulated machine under every
//! algorithm policy, produce numerically consistent outputs, and report
//! sensible per-layer accounting.

use lvconv::conv::Algo;
use lvconv::models::{generate_weights, run_network, Activation, Model, ModelBuilder};
use lvconv::sim::{Machine, MachineConfig};

/// A miniature YOLO-like graph exercising every layer type the runner
/// supports (residuals, routes, upsampling, detection head).
fn mini_yolo() -> Model {
    ModelBuilder::new("mini-yolo", 3, 48, 48)
        .conv(8, 3, 1, Activation::Leaky)
        .conv(16, 3, 2, Activation::Leaky)
        .conv(8, 1, 1, Activation::Leaky)
        .conv(16, 3, 1, Activation::Leaky)
        .shortcut(-3)
        .conv(32, 3, 2, Activation::Leaky)
        .conv(16, 1, 1, Activation::Leaky)
        .conv(32, 3, 1, Activation::Leaky)
        .shortcut(-3)
        .conv(24, 1, 1, Activation::Linear)
        .yolo()
        .route(&[-3])
        .conv(8, 1, 1, Activation::Leaky)
        .upsample(2)
        .route(&[-1, 4])
        .conv(16, 3, 1, Activation::Leaky)
        .conv(24, 1, 1, Activation::Linear)
        .yolo()
        .build()
}

/// A miniature VGG-like graph with pooling, FC layers and softmax.
fn mini_vgg() -> Model {
    ModelBuilder::new("mini-vgg", 3, 32, 32)
        .conv(8, 3, 1, Activation::Relu)
        .conv(8, 3, 1, Activation::Relu)
        .maxpool(2, 2)
        .conv(16, 3, 1, Activation::Relu)
        .maxpool(2, 2)
        .conv(32, 3, 1, Activation::Relu)
        .maxpool(2, 2)
        .fc(64, Activation::Relu)
        .fc(10, Activation::Linear)
        .softmax()
        .build()
}

#[test]
fn mini_yolo_runs_under_every_policy() {
    let model = mini_yolo();
    let weights = generate_weights(&model);
    let mut totals = Vec::new();
    for algo in lvconv::conv::ALL_ALGOS {
        let assign = vec![algo; model.conv_count()];
        let mut m = Machine::new(MachineConfig::rvv_integrated(512, 1));
        let rep = run_network(&mut m, &model, &assign, &weights);
        assert_eq!(rep.layers.len(), model.layers.len());
        assert!(rep.conv_fraction() > 0.5, "{algo:?}: conv fraction {}", rep.conv_fraction());
        totals.push(rep.total_cycles);
    }
    // Policies genuinely differ in cost.
    assert!(totals.iter().max() > totals.iter().min());
}

#[test]
fn mini_vgg_softmax_output_is_distribution() {
    let model = mini_vgg();
    let weights = generate_weights(&model);
    let assign = vec![Algo::Gemm6; model.conv_count()];
    let mut m = Machine::new(MachineConfig::rvv_integrated(1024, 4));
    let rep = run_network(&mut m, &model, &assign, &weights);
    // Last layer must be the softmax over 10 classes.
    let last = rep.layers.last().unwrap();
    assert_eq!(last.kind, "softmax");
    assert!(rep.total_cycles > 0);
}

#[test]
fn maxpool_and_fc_account_cycles() {
    let model = mini_vgg();
    let weights = generate_weights(&model);
    let assign = vec![Algo::Gemm3; model.conv_count()];
    let mut m = Machine::new(MachineConfig::rvv_integrated(512, 1));
    let rep = run_network(&mut m, &model, &assign, &weights);
    let by_kind =
        |k: &str| -> u64 { rep.layers.iter().filter(|l| l.kind == k).map(|l| l.cycles).sum() };
    assert!(by_kind("maxpool") > 0);
    assert!(by_kind("fc") > 0);
    assert!(by_kind("conv") > by_kind("maxpool"), "conv must dominate pooling");
    // Layer cycle sum equals the machine total.
    let sum: u64 = rep.layers.iter().map(|l| l.cycles).sum();
    assert_eq!(sum, m.cycles());
}

#[test]
fn winograd_policy_output_close_to_gemm_policy() {
    // Different conv algorithms must compute (numerically) the same
    // network function: compare final-layer activations through the
    // simulated pipeline by running twice and diffing the report-visible
    // effects. We use total flops as a proxy for "executed the same graph"
    // plus a direct functional probe on one layer elsewhere; here we check
    // the graphs agree structurally and winograd fell back only on
    // non-3x3 layers.
    let model = mini_yolo();
    let weights = generate_weights(&model);
    let assign = vec![Algo::Winograd; model.conv_count()];
    let mut m = Machine::new(MachineConfig::rvv_integrated(512, 1));
    let rep = run_network(&mut m, &model, &assign, &weights);
    let shapes = model.conv_shapes();
    let conv_reports: Vec<_> = rep.layers.iter().filter(|l| l.kind == "conv").collect();
    for (s, r) in shapes.iter().zip(conv_reports) {
        if s.winograd_applicable() {
            assert_eq!(r.algo, Some(Algo::Winograd));
        } else {
            assert_eq!(r.algo, Some(Algo::Gemm6), "fallback expected for {s:?}");
        }
    }
}

#[test]
fn larger_cache_never_slows_a_network() {
    let model = mini_yolo();
    let weights = generate_weights(&model);
    let assign = vec![Algo::Gemm3; model.conv_count()];
    let cycles_at = |l2: usize| {
        let mut m = Machine::new(MachineConfig::rvv_integrated(512, l2));
        run_network(&mut m, &model, &assign, &weights).total_cycles
    };
    let c1 = cycles_at(1);
    let c16 = cycles_at(16);
    // Allow a sliver of allocator-placement noise.
    assert!(c16 as f64 <= c1 as f64 * 1.01, "16MB {c16} vs 1MB {c1}");
}

//! The full selection pipeline on a scaled-down grid: simulate, label,
//! train, cross-validate, and check that the predicted-optimal policy is
//! close to the oracle — the machinery behind Figs. 9-12.

use lvconv::bench::grid::{from_csv, paper2_points, policy_cycles, run_points, to_csv, SimPoint};
use lvconv::bench::selector::{dataset_from_grid, evaluate_selector, predicted_cycles};
use lvconv::conv::{Algo, ALL_ALGOS};
use lvconv::forest::ForestParams;
use lvconv::sim::MachineConfig;
use lvconv::tensor::ConvShape;

/// A reduced grid: 6 distinctive layers x 8 hardware configs x 4 algos.
fn small_grid() -> Vec<lvconv::bench::grid::GridRow> {
    let layers = [
        ConvShape::same_pad(3, 16, 48, 3, 1),  // first-layer regime
        ConvShape::same_pad(16, 32, 24, 3, 1), // contested 3x3
        ConvShape::same_pad(32, 16, 24, 1, 1), // 1x1 squeeze
        ConvShape::same_pad(16, 32, 24, 3, 2), // strided
        ConvShape::same_pad(64, 64, 6, 3, 1),  // skinny
        ConvShape::same_pad(8, 64, 12, 3, 1),  // wide oc
    ];
    let mut pts = Vec::new();
    for (i, s) in layers.iter().enumerate() {
        for vlen in [512usize, 1024, 2048, 4096] {
            for l2 in [1usize, 4] {
                for algo in ALL_ALGOS {
                    pts.push(SimPoint {
                        model: "small".into(),
                        layer: i + 1,
                        shape: *s,
                        cfg: MachineConfig::rvv_integrated(vlen, l2),
                        algo,
                    });
                }
            }
        }
    }
    run_points(pts, false)
}

#[test]
fn grid_csv_roundtrips_exactly() {
    let rows = small_grid();
    let text = to_csv(&rows);
    let back = from_csv(&text).expect("parse");
    assert_eq!(rows.len(), back.len());
    for (a, b) in rows.iter().zip(&back) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.shape, b.shape);
        assert_eq!(a.algo, b.algo);
        assert_eq!(a.vlen_bits, b.vlen_bits);
    }
}

#[test]
fn labels_vary_across_design_points() {
    // The premise of the whole paper: the best algorithm is not constant.
    let rows = small_grid();
    let (ds, _) = dataset_from_grid(&rows);
    let distinct: std::collections::BTreeSet<usize> = ds.labels.iter().copied().collect();
    assert!(distinct.len() >= 2, "expected multiple winning algorithms, got {distinct:?}");
}

#[test]
fn selector_beats_chance_and_predictions_resolve() {
    let rows = small_grid();
    let eval = evaluate_selector(&rows, ForestParams { n_trees: 40, ..Default::default() });
    // 4-class problem: chance ~ the majority-class share; the forest should
    // do clearly better than 40%.
    assert!(eval.cv.mean_accuracy > 0.5, "cv accuracy too low: {:.2}", eval.cv.mean_accuracy);
    // Every cross-validated prediction must map to a real measurement.
    for (k, algo) in &eval.predictions {
        let c = policy_cycles(&rows, &k.model, k.layer, k.vlen, k.l2, Some(*algo));
        assert!(c.is_some(), "prediction {algo:?} unmeasurable at {k:?}");
    }
}

#[test]
fn predicted_policy_close_to_oracle() {
    let rows = small_grid();
    let eval = evaluate_selector(&rows, ForestParams { n_trees: 40, ..Default::default() });
    let mut pred_total = 0u64;
    let mut oracle_total = 0u64;
    for k in eval.predictions.keys() {
        let p = predicted_cycles(&rows, &eval.predictions, &k.model, k.layer, k.vlen, k.l2)
            .expect("resolvable");
        let o = policy_cycles(&rows, &k.model, k.layer, k.vlen, k.l2, None).expect("oracle");
        pred_total += p;
        oracle_total += o;
        assert!(p >= o, "prediction cannot beat the oracle");
    }
    let overhead = pred_total as f64 / oracle_total as f64;
    assert!(overhead < 1.25, "predicted policy should be within 25% of oracle, got {overhead:.3}x");
}

#[test]
fn oracle_policy_dominates_uniform_policies() {
    let rows = small_grid();
    for vlen in [512usize, 2048] {
        let oracle: u64 =
            (1..=6).map(|l| policy_cycles(&rows, "small", l, vlen, 1, None).unwrap()).sum();
        for algo in ALL_ALGOS {
            let uniform: u64 = (1..=6)
                .map(|l| {
                    policy_cycles(&rows, "small", l, vlen, 1, Some(algo)).unwrap_or(u64::MAX / 8)
                })
                .sum();
            assert!(oracle <= uniform, "oracle lost to {algo:?} at {vlen}b");
        }
    }
}

#[test]
fn dataset_counts_match_grid() {
    let rows = small_grid();
    let (ds, keys) = dataset_from_grid(&rows);
    assert_eq!(ds.len(), 6 * 4 * 2);
    assert_eq!(keys.len(), ds.len());
    // Paper dataset analogue: 28 layers x 16 configs = 448 points.
    assert_eq!(paper2_points(1.0).len(), 28 * 16 * 4);
}

#[test]
fn winograd_label_only_on_applicable_layers() {
    let rows = small_grid();
    let (ds, keys) = dataset_from_grid(&rows);
    for (row, &label) in ds.labels.iter().enumerate() {
        if Algo::from_label(label) == Algo::Winograd {
            let k = &keys[row];
            // Find that layer's shape from the grid.
            let shape = rows.iter().find(|r| r.layer == k.layer).unwrap().shape;
            assert!(shape.winograd_applicable());
        }
    }
}

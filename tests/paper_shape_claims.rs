//! Qualitative reproduction tests: the paper's headline *shapes* (who wins
//! where, what scales with what) must hold on scaled-down layers. These are
//! the same relationships the full-scale figures report; the scale keeps CI
//! fast.

use lvconv::conv::Algo;
use lvconv::models::{measure_layer, zoo};
use lvconv::sim::MachineConfig;
use lvconv::tensor::ConvShape;

fn cycles(s: &ConvShape, algo: Algo, vlen: usize, l2: usize) -> u64 {
    measure_layer(&MachineConfig::rvv_integrated(vlen, l2), s, algo)
        .expect("algorithm applies")
        .cycles
}

/// Paper II Fig. 1/2: Winograd wins contested 3x3 stride-1 layers at the
/// 512-bit / 1 MiB baseline.
#[test]
fn winograd_wins_3x3_midlayers_at_baseline() {
    // VGG-16 layer 2-like (64 -> 64), quarter scale.
    let s = zoo::vgg16().conv_shapes()[1].scaled(0.25);
    let w = cycles(&s, Algo::Winograd, 512, 1);
    for a in [Algo::Direct, Algo::Gemm3, Algo::Gemm6] {
        assert!(w < cycles(&s, a, 512, 1), "winograd should beat {a:?}");
    }
}

/// Paper II Fig. 1: the 6-loop GEMM wins skinny-matrix layers (low
/// dimensions, many channels).
#[test]
fn gemm6_wins_skinny_layers() {
    // VGG-16 layer 6-like (256 -> 256 @ 14 when scaled).
    let s = zoo::vgg16().conv_shapes()[5].scaled(0.25);
    let g6 = cycles(&s, Algo::Gemm6, 512, 1);
    assert!(g6 < cycles(&s, Algo::Direct, 512, 1));
    assert!(g6 < cycles(&s, Algo::Gemm3, 512, 1));
    assert!(g6 < cycles(&s, Algo::Winograd, 512, 1));
}

/// Paper II Fig. 2: Direct wins the first layer (high dimensions, 3 input
/// channels).
#[test]
fn direct_wins_first_layer() {
    let s = zoo::yolov3_first20().conv_shapes()[0].scaled(0.25);
    let d = cycles(&s, Algo::Direct, 512, 1);
    for a in [Algo::Gemm3, Algo::Gemm6, Algo::Winograd] {
        assert!(d < cycles(&s, a, 512, 1), "direct should beat {a:?}");
    }
}

/// Paper II §4.2.1: Direct shows the best vector-length scalability;
/// Winograd saturates beyond 2048-bit.
#[test]
fn vector_length_scaling_ranks_algorithms() {
    let s = zoo::yolov3_first20().conv_shapes()[3].scaled(0.25); // 32->64 3x3
    let speedup = |a: Algo| cycles(&s, a, 512, 1) as f64 / cycles(&s, a, 4096, 1) as f64;
    let d = speedup(Algo::Direct);
    let w = speedup(Algo::Winograd);
    assert!(d > 1.8, "direct should scale with VL, got {d:.2}x");
    assert!(d > w, "direct ({d:.2}x) should out-scale winograd ({w:.2}x)");
    // Winograd flat between 2048 and 4096 bits (fixed 8x8 tiles).
    let w2048 = cycles(&s, Algo::Winograd, 2048, 1);
    let w4096 = cycles(&s, Algo::Winograd, 4096, 1);
    let gain = w2048 as f64 / w4096 as f64;
    assert!(gain < 1.15, "winograd 2048->4096 gain should be small, got {gain:.2}x");
}

/// Paper II §4.2.2: Winograd's fixed tile size leaves large caches unused,
/// while the 3-loop GEMM recovers dramatically from its 4096-bit cache
/// thrashing once the L2 grows.
#[test]
fn cache_scaling_contrast() {
    let s = zoo::vgg16().conv_shapes()[7]; // 256->512 @28, full scale
    let wino_gain =
        cycles(&s, Algo::Winograd, 512, 1) as f64 / cycles(&s, Algo::Winograd, 512, 64) as f64;
    let gemm3_gain_longvl =
        cycles(&s, Algo::Gemm3, 4096, 1) as f64 / cycles(&s, Algo::Gemm3, 4096, 64) as f64;
    assert!(wino_gain < 1.3, "winograd should be cache-insensitive, got {wino_gain:.2}x");
    assert!(
        gemm3_gain_longvl > 1.4,
        "3-loop GEMM at 4096-bit should gain from cache, got {gemm3_gain_longvl:.2}x"
    );
    assert!(gemm3_gain_longvl > wino_gain);
}

/// Paper II Fig. 3 (layers 6-8 observation): at 4096-bit the 3-loop GEMM's
/// per-j-block B panel overflows a 1 MiB L2 and the miss rate explodes.
#[test]
fn gemm3_long_vector_thrashes_small_cache() {
    let s = zoo::vgg16().conv_shapes()[7]; // K = 2304: panel 1.18 MiB at 4096b
    let cfg = MachineConfig::rvv_integrated(4096, 1);
    let m = measure_layer(&cfg, &s, Algo::Gemm3).unwrap();
    assert!(m.l2_miss_rate > 0.5, "expected thrashing, miss rate {:.2}", m.l2_miss_rate);
    let cfg16 = MachineConfig::rvv_integrated(4096, 16);
    let m16 = measure_layer(&cfg16, &s, Algo::Gemm3).unwrap();
    assert!(m16.l2_miss_rate < 0.2, "16 MiB should absorb the panel, {:.2}", m16.l2_miss_rate);
}

/// Paper I §VI-A: the BLIS-like 6-loop optimizations do not pay off on the
/// decoupled VPU (within a few percent of 3-loop), but do on the
/// integrated one — "not all optimizations benefit all architectures".
#[test]
fn blis_optimizations_not_portable_across_vpu_styles() {
    let s = zoo::yolov3_first20().conv_shapes()[4].scaled(0.25);
    let run = |algo: Algo, dec: bool| {
        let cfg = if dec {
            MachineConfig::rvv_decoupled(512, 1)
        } else {
            MachineConfig::rvv_integrated(512, 1)
        };
        measure_layer(&cfg, &s, algo).unwrap().cycles
    };
    let ratio_dec = run(Algo::Gemm3, true) as f64 / run(Algo::Gemm6, true) as f64;
    let ratio_int = run(Algo::Gemm3, false) as f64 / run(Algo::Gemm6, false) as f64;
    // Integrated machines get a bigger 6-loop benefit than decoupled ones.
    assert!(
        ratio_int > ratio_dec,
        "6-loop should help integrated ({ratio_int:.3}) more than decoupled ({ratio_dec:.3})"
    );
}

/// Paper I §VII: on a prefetch-capable A64FX-like machine the 6-loop GEMM
/// clearly beats the 3-loop implementation.
#[test]
fn a64fx_prefers_six_loops() {
    let s = zoo::vgg16().conv_shapes()[4].scaled(0.25);
    let cfg = MachineConfig::a64fx_like();
    let g3 = measure_layer(&cfg, &s, Algo::Gemm3).unwrap().cycles;
    let g6 = measure_layer(&cfg, &s, Algo::Gemm6).unwrap().cycles;
    assert!(g6 < g3, "6-loop {g6} should beat 3-loop {g3} with prefetch + caches");
}

/// Paper II §4.3 premise: no single algorithm wins everywhere, so per-layer
/// selection beats any uniform assignment on the conv stack.
#[test]
fn optimal_selection_beats_every_single_algorithm() {
    let layers: Vec<ConvShape> =
        zoo::vgg16().conv_shapes().iter().map(|s| s.scaled(0.25)).collect();
    let cfg = MachineConfig::rvv_integrated(512, 1);
    let algo_total = |a: Algo| -> u64 {
        layers
            .iter()
            .map(|s| {
                let eff =
                    if a == Algo::Winograd && !s.winograd_applicable() { Algo::Gemm6 } else { a };
                measure_layer(&cfg, s, eff).unwrap().cycles
            })
            .sum()
    };
    let optimal: u64 = layers
        .iter()
        .map(|s| {
            lvconv::conv::ALL_ALGOS
                .iter()
                .filter_map(|&a| measure_layer(&cfg, s, a).map(|m| m.cycles))
                .min()
                .unwrap()
        })
        .sum();
    for a in lvconv::conv::ALL_ALGOS {
        assert!(optimal <= algo_total(a), "optimal should not lose to {a:?}");
    }
    let best_single = lvconv::conv::ALL_ALGOS.iter().map(|&a| algo_total(a)).min().unwrap();
    assert!(
        (best_single as f64) > (optimal as f64) * 1.02,
        "selection should give a real margin: best single {best_single}, optimal {optimal}"
    );
}

/// Paper I: longer vectors amortize startup even at fixed cache; the gain
/// from 512 -> 4096 bits on the decoupled machine is substantial.
#[test]
fn long_vectors_speed_up_decoupled_gemm() {
    let s = zoo::yolov3_first20().conv_shapes()[6].scaled(0.25);
    let run = |vlen: usize| {
        measure_layer(&MachineConfig::rvv_decoupled(vlen, 1), &s, Algo::Gemm3).unwrap().cycles
    };
    let sp = run(512) as f64 / run(4096) as f64;
    assert!(sp > 1.5, "expected >1.5x from 8x longer vectors, got {sp:.2}x");
}
